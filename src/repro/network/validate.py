"""Structural validation of network topologies."""

from __future__ import annotations

from repro.exceptions import TopologyError
from repro.network.topology import NetworkTopology


def validate_topology(net: NetworkTopology, *, require_connected: bool = True) -> None:
    """Check structural invariants; raise :class:`TopologyError` on violation.

    Checked: at least one processor, positive finite speeds, adjacency
    consistency, and (by default) that every processor can reach every other
    processor — a topology where some pair has no route cannot host arbitrary
    task graphs.
    """
    procs = net.processors()
    if not procs:
        raise TopologyError(f"topology {net.name!r} has no processors")

    for v in net.vertices():
        if v.is_processor and not (0 < v.speed < float("inf")):
            raise TopologyError(f"processor {v.vid} has invalid speed {v.speed}")
    for link in net.links():
        if not (0 < link.speed < float("inf")):
            raise TopologyError(f"link {link.lid} has invalid speed {link.speed}")
        net.vertex(link.src)
        net.vertex(link.dst)
        for m in link.members:
            net.vertex(m)

    for v in net.vertices():
        for link, nbr in net.out_links(v.vid):
            if net.link(link.lid) is not link:
                raise TopologyError(
                    f"adjacency of vertex {v.vid} references unregistered link {link.lid}"
                )
            net.vertex(nbr)

    if require_connected and len(procs) > 1:
        # Reachability from one processor covers all (links are symmetric by
        # construction: full duplex adds both directions, half duplex and
        # buses are bidirectional).
        seen = {procs[0].vid}
        stack = [procs[0].vid]
        while stack:
            u = stack.pop()
            for _, v in net.out_links(u):
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        missing = [p.vid for p in procs if p.vid not in seen]
        if missing:
            raise TopologyError(
                f"topology {net.name!r} is disconnected: processors {missing} "
                f"unreachable from processor {procs[0].vid}"
            )
