"""Route search over network topologies.

Two routing policies, matching the paper:

- :func:`bfs_route` — BA's *minimal routing*: shortest path in hop count,
  found by breadth-first search.  Static: ignores link speeds and load.
- :func:`dijkstra_route` — OIHSA/BBSA's *modified routing*: Dijkstra where
  relaxing a link asks a caller-supplied probe "when would this communication
  finish on this link, given the current link schedules, if it becomes
  available at time t?".  The route therefore adapts to live contention.

Both tie-break deterministically (lowest link id wins) so schedules are
reproducible.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Callable

from repro.exceptions import RoutingError
from repro.network.topology import Link, NetworkTopology, Route
from repro.obs import OBS
from repro.types import VertexId

#: probe(link, ready_time) -> finish time of the communication on that link.
LinkProbe = Callable[[Link, float], float]


def _check_endpoints(net: NetworkTopology, src: VertexId, dst: VertexId) -> None:
    for vid in (src, dst):
        if not net.vertex(vid).is_processor:
            raise RoutingError(f"route endpoint {vid} is not a processor")


def bfs_route(net: NetworkTopology, src: VertexId, dst: VertexId) -> Route:
    """Minimal (fewest-links) route from processor ``src`` to ``dst``.

    Returns ``[]`` when ``src == dst``.  Ties between equal-hop paths break
    toward smaller link ids, matching a deterministic BFS expansion order.
    """
    _check_endpoints(net, src, dst)
    if src == dst:
        return []
    parent: dict[VertexId, tuple[VertexId, Link]] = {}
    seen = {src}
    frontier = deque([src])
    while frontier:
        u = frontier.popleft()
        for link, v in sorted(net.out_links(u), key=lambda lv: lv[0].lid):
            if v in seen:
                continue
            seen.add(v)
            parent[v] = (u, link)
            if v == dst:
                frontier.clear()
                break
            frontier.append(v)
    if dst not in parent:
        raise RoutingError(
            f"no route from processor {src} to {dst} in topology {net.name!r}"
        )
    route: Route = []
    cur = dst
    while cur != src:
        prev, link = parent[cur]
        route.append(link)
        cur = prev
    route.reverse()
    if OBS.on:
        OBS.metrics.counter("routing.bfs_routes").inc()
        OBS.metrics.histogram("routing.route_length").observe(float(len(route)))
        OBS.emit(
            "route_probed",
            policy="bfs",
            src=src,
            dst=dst,
            hops=len(route),
            links=[l.lid for l in route],
        )
    return route


def dijkstra_route(
    net: NetworkTopology,
    src: VertexId,
    dst: VertexId,
    ready_time: float,
    probe: LinkProbe,
) -> Route:
    """Contention-aware route: minimize the communication's arrival time.

    ``probe(link, t)`` must return the finish time of the communication on
    ``link`` when the data is available to enter the link at time ``t``; it
    must be monotone in ``t`` (later availability never finishes earlier),
    which holds for every insertion policy in :mod:`repro.linksched`.  Under
    that assumption this is a standard label-setting Dijkstra on arrival
    times.

    Equal arrival times are broken toward **fewer hops**: with cut-through
    communication an idle detour often finishes exactly when the direct
    route does, and preferring the short route avoids squandering link
    capacity that later edges will need (the paper's "route paths with
    relatively low network workload").
    """
    _check_endpoints(net, src, dst)
    if src == dst:
        return []
    if ready_time < 0:
        raise RoutingError(f"negative ready time {ready_time}")
    dist: dict[VertexId, tuple[float, int]] = {src: (ready_time, 0)}
    parent: dict[VertexId, tuple[VertexId, Link]] = {}
    done: set[VertexId] = set()
    # Heap entries carry (arrival, hops, vertex id); hops then vertex id are
    # the deterministic tie-breaks.
    heap: list[tuple[float, int, VertexId]] = [(ready_time, 0, src)]
    relaxations = 0
    while heap:
        d, hops, u = heappop(heap)
        if u in done:
            continue
        done.add(u)
        if u == dst:
            break
        for link, v in sorted(net.out_links(u), key=lambda lv: lv[0].lid):
            if v in done:
                continue
            relaxations += 1
            arrival = probe(link, d)
            if arrival < d:
                raise RoutingError(
                    f"probe on link {link.lid} returned arrival {arrival} earlier "
                    f"than availability {d}"
                )
            label = (arrival, hops + 1)
            if label < dist.get(v, (float("inf"), 0)):
                dist[v] = label
                parent[v] = (u, link)
                heappush(heap, (arrival, hops + 1, v))
    if dst not in parent:
        raise RoutingError(
            f"no route from processor {src} to {dst} in topology {net.name!r}"
        )
    route: Route = []
    cur = dst
    while cur != src:
        prev, link = parent[cur]
        route.append(link)
        cur = prev
    route.reverse()
    if OBS.on:
        OBS.metrics.counter("routing.dijkstra_routes").inc()
        OBS.metrics.counter("routing.relaxations").inc(relaxations)
        OBS.metrics.histogram("routing.route_length").observe(float(len(route)))
        OBS.emit(
            "route_probed",
            t=dist[dst][0],
            policy="dijkstra",
            src=src,
            dst=dst,
            hops=len(route),
            relaxations=relaxations,
            arrival=dist[dst][0],
            links=[l.lid for l in route],
        )
    return route
