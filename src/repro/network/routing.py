"""Route search over network topologies.

Two routing policies, matching the paper:

- :func:`bfs_route` — BA's *minimal routing*: shortest path in hop count,
  found by breadth-first search.  Static: ignores link speeds and load.
- :func:`dijkstra_route` — OIHSA/BBSA's *modified routing*: Dijkstra where
  relaxing a link asks a caller-supplied probe "when would this communication
  finish on this link, given the current link schedules, if it becomes
  available at time t?".  The route therefore adapts to live contention.

Both tie-break deterministically (lowest link id wins) so schedules are
reproducible.

On top of the flat searches sits the datacenter-fabric layer:

- :class:`HierarchicalRouter` — attached to a topology by the fabric
  generators (:mod:`repro.network.fabrics`), it serves minimal routes from
  **per-pod sharded, lazily materialized** route tables, computing each
  route analytically from the fabric's regular structure where that
  provably reproduces the flat BFS tie-break, and falling back to the exact
  flat search otherwise.  Routes are therefore *bit-identical* to
  :func:`bfs_route` on a plain topology while a thousand-processor fabric
  never has to build the full ``(src, dst)`` cross-product table.
- :func:`equal_cost_routes` — enumerates the full ECMP set of minimal
  routes between two processors in deterministic (lexicographic link-id)
  order, for symmetric point-to-point topologies.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Callable, Protocol

from repro.exceptions import RoutingError
from repro.network.topology import Link, NetworkTopology, Route
from repro.obs import OBS
from repro.types import VertexId

#: probe(link, ready_time) -> finish time of the communication on that link.
LinkProbe = Callable[[Link, float], float]


def _check_endpoints(net: NetworkTopology, src: VertexId, dst: VertexId) -> None:
    for vid in (src, dst):
        if not net.vertex(vid).is_processor:
            raise RoutingError(f"route endpoint {vid} is not a processor")


def _bfs_search(net: NetworkTopology, src: VertexId, dst: VertexId) -> Route:
    """The canonical BFS tie-break search, uncached and unobserved.

    One implementation shared by the flat :func:`bfs_route` path and the
    :class:`HierarchicalRouter` fallback, so "the route flat BFS would pick"
    is defined in exactly one place.
    """
    # Vertex ids are dense ``0..n-1`` (sequential assignment, no removal), so
    # the search state lives in flat arrays instead of dicts/sets.
    n = net.num_vertices
    parent_v: list[VertexId] = [-1] * n
    parent_l: list[Link | None] = [None] * n
    seen = bytearray(n)
    seen[src] = 1
    frontier = deque([src])
    while frontier:
        u = frontier.popleft()
        for link, v in net.sorted_out_links(u):
            if seen[v]:
                continue
            seen[v] = 1
            parent_v[v] = u
            parent_l[v] = link
            if v == dst:
                frontier.clear()
                break
            frontier.append(v)
    if parent_l[dst] is None:
        raise RoutingError(
            f"no route from processor {src} to {dst} in topology {net.name!r}"
        )
    route: Route = []
    cur = dst
    while cur != src:
        link = parent_l[cur]
        assert link is not None  # every non-src chain vertex has a parent
        route.append(link)
        cur = parent_v[cur]
    route.reverse()
    return route


def bfs_route(net: NetworkTopology, src: VertexId, dst: VertexId) -> Route:
    """Minimal (fewest-links) route from processor ``src`` to ``dst``.

    Returns ``[]`` when ``src == dst``.  Ties between equal-hop paths break
    toward smaller link ids, matching a deterministic BFS expansion order.

    Minimal routes are purely topological, so results are memoized and
    shared across all engines; callers must treat the returned route as
    read-only.  On a plain topology the memo is the flat
    :meth:`~repro.network.topology.NetworkTopology.route_table`; when a
    fabric generator attached a :class:`HierarchicalRouter`, routes come
    from its sharded lazy tables instead (same routes, bounded memory).
    Both are invalidated by any topology mutation.
    """
    _check_endpoints(net, src, dst)
    if src == dst:
        return []
    router = net.attached_router
    if router is not None:
        return router.minimal_route(src, dst)
    table = net.route_table()
    cached = table.get((src, dst))
    if cached is not None:
        if OBS.on:
            OBS.metrics.counter("routing.table_hits").inc()
        return cached
    route = _bfs_search(net, src, dst)
    table[(src, dst)] = route
    if OBS.on:
        OBS.metrics.counter("routing.bfs_routes").inc()
        OBS.metrics.histogram("routing.route_length").observe(float(len(route)))
        OBS.emit(
            "route_probed",
            policy="bfs",
            src=src,
            dst=dst,
            hops=len(route),
            links=[l.lid for l in route],
        )
    return route


#: label used for unlabeled vertices; module-level so identity comparison
#: distinguishes "never labeled" without allocating per relaxation
_UNLABELED: tuple[float, int] = (float("inf"), 0)


def dijkstra_route(
    net: NetworkTopology,
    src: VertexId,
    dst: VertexId,
    ready_time: float,
    probe: LinkProbe,
    lower_bound: LinkProbe | None = None,
) -> Route:
    """Contention-aware route: minimize the communication's arrival time.

    ``probe(link, t)`` must return the finish time of the communication on
    ``link`` when the data is available to enter the link at time ``t``; it
    must be monotone in ``t`` (later availability never finishes earlier),
    which holds for every insertion policy in :mod:`repro.linksched`.  Under
    that assumption this is a standard label-setting Dijkstra on arrival
    times.

    ``lower_bound(link, t)``, when given, must return a value ``<=``
    ``probe(link, t)`` (typically the contention-free ``t + cost / speed``).
    When even the bound cannot improve the target vertex's current label,
    the (much more expensive) ``probe`` is skipped.  Because the actual
    arrival can only be later, the skipped relaxation could never have
    updated the label — routes are unchanged.  The bound also prunes
    against the **destination's** current label: an update whose bound is
    *strictly* above it would give its target a label that pops only after
    ``dst``, where the search stops, so skipping it changes neither the
    popped-vertex sequence nor the returned route (ties are never pruned
    this way — an equal-arrival label with fewer hops can still pop first
    and matter).  Against an unlabeled target the bound alone can never
    prune, so it is skipped there — except while observability is on,
    where the callable is invoked on every relaxation so callers may hang
    per-relaxation bookkeeping (probe counters) on it.

    Equal arrival times are broken toward **fewer hops**: with cut-through
    communication an idle detour often finishes exactly when the direct
    route does, and preferring the short route avoids squandering link
    capacity that later edges will need (the paper's "route paths with
    relatively low network workload").
    """
    _check_endpoints(net, src, dst)
    if src == dst:
        return []
    if ready_time < 0:
        raise RoutingError(f"negative ready time {ready_time}")
    # Vertex ids are dense ``0..n-1`` (sequential assignment, no removal), so
    # labels, parents, and the done flags live in flat arrays — the relax
    # loop's inner reads are list indexing instead of dict/set lookups.
    n = net.num_vertices
    inf = _UNLABELED[0]
    dist_t: list[float] = [inf] * n
    dist_h: list[int] = [0] * n
    parent_v: list[VertexId] = [-1] * n
    parent_l: list[Link | None] = [None] * n
    done = bytearray(n)
    dist_t[src] = ready_time
    # Heap entries carry (arrival, hops, vertex id); hops then vertex id are
    # the deterministic tie-breaks.
    heap: list[tuple[float, int, VertexId]] = [(ready_time, 0, src)]
    relaxations = 0
    cutoffs = 0
    out_links = net.sorted_out_links
    obs_on = OBS.on
    has_bound = lower_bound is not None
    best_dst = inf
    while heap:
        d, hops, u = heappop(heap)
        if done[u]:
            continue
        done[u] = 1
        if u == dst:
            break
        nh = hops + 1
        for link, v in out_links(u):
            if done[v]:
                continue
            relaxations += 1
            cur_t = dist_t[v]
            if has_bound and (cur_t != inf or best_dst != inf or obs_on):
                # Tuple-free ``(lower_bound, nh) >= (cur_t, cur_h)``
                # comparison, plus the strictly-worse-than-destination prune
                # (see docstring).
                lb = lower_bound(link, d)
                if lb > cur_t or (lb == cur_t and nh >= dist_h[v]) or lb > best_dst:
                    cutoffs += 1
                    continue
            arrival = probe(link, d)
            if arrival < d:
                raise RoutingError(
                    f"probe on link {link.lid} returned arrival {arrival} earlier "
                    f"than availability {d}"
                )
            if arrival < cur_t or (arrival == cur_t and nh < dist_h[v]):
                dist_t[v] = arrival
                dist_h[v] = nh
                parent_v[v] = u
                parent_l[v] = link
                heappush(heap, (arrival, nh, v))
                if v == dst:
                    best_dst = arrival
    if parent_l[dst] is None:
        raise RoutingError(
            f"no route from processor {src} to {dst} in topology {net.name!r}"
        )
    route: Route = []
    cur = dst
    while cur != src:
        route.append(parent_l[cur])
        cur = parent_v[cur]
    route.reverse()
    if OBS.on:
        OBS.metrics.counter("routing.dijkstra_routes").inc()
        OBS.metrics.counter("routing.relaxations").inc(relaxations)
        if cutoffs:
            OBS.metrics.counter("routing.probe_cutoffs").inc(cutoffs)
        OBS.metrics.histogram("routing.route_length").observe(float(len(route)))
        OBS.emit(
            "route_probed",
            t=dist_t[dst],
            policy="dijkstra",
            src=src,
            dst=dst,
            hops=len(route),
            relaxations=relaxations,
            arrival=dist_t[dst],
            links=[l.lid for l in route],
        )
    return route


# ---------------------------------------------------------------------------
# Datacenter-fabric layer: ECMP sets + sharded lazy hierarchical routing.
# ---------------------------------------------------------------------------


class FabricPlan(Protocol):
    """The structural knowledge a fabric generator hands to the router.

    Implementations live in :mod:`repro.network.fabrics`; the router only
    needs three capabilities and stays agnostic of the concrete fabric.
    """

    #: fabric family name ("fat_tree" / "leaf_spine" / "torus")
    kind: str

    def shard_of(self, vid: VertexId) -> int:
        """Route-table shard of processor ``vid`` (its pod / leaf / slab)."""
        ...

    def canonical_route(
        self, net: NetworkTopology, src: VertexId, dst: VertexId
    ) -> Route | None:
        """The route flat BFS would return, computed from fabric structure.

        Returns ``None`` when the fabric cannot *prove* its analytic choice
        matches the flat BFS tie-break (the router then falls back to the
        exact shared search) — correctness is never traded for speed.
        """
        ...

    def equal_cost_routes(
        self,
        net: NetworkTopology,
        src: VertexId,
        dst: VertexId,
        max_paths: int,
    ) -> list[Route]:
        """The ECMP set: minimal routes in deterministic order."""
        ...


class HierarchicalRouter:
    """Sharded, lazily materialized minimal routing for regular fabrics.

    Satisfies :class:`repro.network.topology.MinimalRouter`.  Routes are
    bit-identical to :func:`bfs_route` on the same (router-less) topology:
    the fabric plan either reproduces the BFS tie-break analytically in
    O(route length) or the router runs the exact shared BFS.  What changes
    is the *memory shape* — entries live in per-shard dictionaries filled
    only for the ``(src, dst)`` pairs actually routed, so a 1k–4k processor
    fabric never holds the full cross-product table.
    """

    def __init__(self, net: NetworkTopology, fabric: FabricPlan) -> None:
        self._net = net
        self.fabric = fabric
        self._shards: dict[int, dict[tuple[VertexId, VertexId], Route]] = {}
        self._materialized = 0
        self._analytic = 0

    # -- MinimalRouter protocol ---------------------------------------------

    def minimal_route(self, src: VertexId, dst: VertexId) -> Route:
        shard = self._shards.get(self.fabric.shard_of(src))
        if shard is not None:
            cached = shard.get((src, dst))
            if cached is not None:
                if OBS.on:
                    OBS.metrics.counter("routing.table_hits").inc()
                return cached
        return self._materialize(src, dst)

    def materialized_entries(self) -> int:
        return self._materialized

    # -- internals ----------------------------------------------------------

    def _materialize(self, src: VertexId, dst: VertexId) -> Route:
        net = self._net
        route = self.fabric.canonical_route(net, src, dst)
        analytic = route is not None
        if route is None:
            route = _bfs_search(net, src, dst)
        shard_key = self.fabric.shard_of(src)
        shard = self._shards.get(shard_key)
        if shard is None:
            shard = {}
            self._shards[shard_key] = shard
        shard[(src, dst)] = route
        self._materialized += 1
        if analytic:
            self._analytic += 1
        if OBS.on:
            OBS.metrics.counter("routing.lazy_materialized").inc()
            if analytic:
                OBS.metrics.counter("routing.fabric_routes").inc()
            else:
                OBS.metrics.counter("routing.bfs_routes").inc()
            OBS.metrics.histogram("routing.route_length").observe(float(len(route)))
            OBS.emit(
                "route_probed",
                policy="fabric" if analytic else "bfs",
                src=src,
                dst=dst,
                hops=len(route),
                links=[l.lid for l in route],
            )
        return route

    def ecmp_routes(
        self, src: VertexId, dst: VertexId, *, max_paths: int = 64
    ) -> list[Route]:
        """All equal-cost minimal routes ``src -> dst`` (capped, ordered)."""
        _check_endpoints(self._net, src, dst)
        if src == dst:
            return []
        if max_paths < 1:
            raise RoutingError(f"max_paths must be >= 1, got {max_paths}")
        return self.fabric.equal_cost_routes(self._net, src, dst, max_paths)

    def stats(self) -> dict[str, int]:
        """Materialization accounting (the lazy-table acceptance numbers)."""
        n_procs = len(self._net.processors())
        return {
            "shards": len(self._shards),
            "materialized_entries": self._materialized,
            "analytic_routes": self._analytic,
            "cross_product_entries": n_procs * (n_procs - 1),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HierarchicalRouter(kind={self.fabric.kind!r}, "
            f"shards={len(self._shards)}, materialized={self._materialized})"
        )


def equal_cost_routes(
    net: NetworkTopology,
    src: VertexId,
    dst: VertexId,
    *,
    max_paths: int = 64,
) -> list[Route]:
    """Every minimal route ``src -> dst``, in lexicographic link-id order.

    Generic ECMP-set enumeration over the shortest-path DAG: one BFS from
    ``src`` (forward), one from ``dst`` (over reversed links), then a DFS
    that only follows links lying on *some* minimal path.  Requires the
    point-to-point links to be direction-symmetric (every fabric builder
    uses full-duplex cables; bus hyperedges are rejected) so the reverse
    distances are well defined.

    Enumeration stops after ``max_paths`` routes — the ECMP width of a
    large torus is combinatorial, and callers want "the first few, in a
    deterministic order" rather than an exhaustive blow-up.  The canonical
    :func:`bfs_route` choice is always a member of the full set (it is a
    minimal route); tests assert membership on fabrics where the cap is
    not hit.
    """
    _check_endpoints(net, src, dst)
    if src == dst:
        return []
    if max_paths < 1:
        raise RoutingError(f"max_paths must be >= 1, got {max_paths}")
    n = net.num_vertices
    inf = n + 1
    # Forward hop distances from src.
    dist_s = [inf] * n
    dist_s[src] = 0
    frontier = deque([src])
    while frontier:
        u = frontier.popleft()
        for link, v in net.sorted_out_links(u):
            if link.kind == "bus":
                raise RoutingError(
                    f"equal_cost_routes requires point-to-point links; "
                    f"link {link.lid} is a bus"
                )
            if dist_s[v] > dist_s[u] + 1:
                dist_s[v] = dist_s[u] + 1
                frontier.append(v)
    if dist_s[dst] >= inf:
        raise RoutingError(
            f"no route from processor {src} to {dst} in topology {net.name!r}"
        )
    # Reverse hop distances to dst: BFS over incoming links.
    in_adj: list[list[VertexId]] = [[] for _ in range(n)]
    for vtx in net.vertices():
        for _, v in net.out_links(vtx.vid):
            in_adj[v].append(vtx.vid)
    dist_t = [inf] * n
    dist_t[dst] = 0
    frontier = deque([dst])
    while frontier:
        u = frontier.popleft()
        for w in in_adj[u]:
            if dist_t[w] > dist_t[u] + 1:
                dist_t[w] = dist_t[u] + 1
                frontier.append(w)
    total = dist_s[dst]
    routes: list[Route] = []
    prefix: Route = []

    def _extend(u: VertexId) -> bool:
        """DFS in sorted link-id order; returns False once the cap is hit."""
        if u == dst:
            routes.append(list(prefix))
            return len(routes) < max_paths
        depth = len(prefix)
        for link, v in net.sorted_out_links(u):
            # On a minimal path iff the hop advances the src-distance and the
            # remaining distance fits the total exactly.
            if dist_s[v] == depth + 1 and depth + 1 + dist_t[v] == total:
                prefix.append(link)
                more = _extend(v)
                prefix.pop()
                if not more:
                    return False
        return True

    _extend(src)
    return routes
