"""Route search over network topologies.

Two routing policies, matching the paper:

- :func:`bfs_route` — BA's *minimal routing*: shortest path in hop count,
  found by breadth-first search.  Static: ignores link speeds and load.
- :func:`dijkstra_route` — OIHSA/BBSA's *modified routing*: Dijkstra where
  relaxing a link asks a caller-supplied probe "when would this communication
  finish on this link, given the current link schedules, if it becomes
  available at time t?".  The route therefore adapts to live contention.

Both tie-break deterministically (lowest link id wins) so schedules are
reproducible.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Callable

from repro.exceptions import RoutingError
from repro.network.topology import Link, NetworkTopology, Route
from repro.obs import OBS
from repro.types import VertexId

#: probe(link, ready_time) -> finish time of the communication on that link.
LinkProbe = Callable[[Link, float], float]


def _check_endpoints(net: NetworkTopology, src: VertexId, dst: VertexId) -> None:
    for vid in (src, dst):
        if not net.vertex(vid).is_processor:
            raise RoutingError(f"route endpoint {vid} is not a processor")


def bfs_route(net: NetworkTopology, src: VertexId, dst: VertexId) -> Route:
    """Minimal (fewest-links) route from processor ``src`` to ``dst``.

    Returns ``[]`` when ``src == dst``.  Ties between equal-hop paths break
    toward smaller link ids, matching a deterministic BFS expansion order.

    Minimal routes are purely topological, so results are memoized in the
    topology's :meth:`~repro.network.topology.NetworkTopology.route_table`
    (invalidated by any mutation) and shared across all engines.  Callers
    must treat the returned route as read-only.
    """
    _check_endpoints(net, src, dst)
    if src == dst:
        return []
    table = net.route_table()
    cached = table.get((src, dst))
    if cached is not None:
        if OBS.on:
            OBS.metrics.counter("routing.table_hits").inc()
        return cached
    # Vertex ids are dense ``0..n-1`` (sequential assignment, no removal), so
    # the search state lives in flat arrays instead of dicts/sets.
    n = net.num_vertices
    parent_v: list[VertexId] = [-1] * n
    parent_l: list[Link | None] = [None] * n
    seen = bytearray(n)
    seen[src] = 1
    frontier = deque([src])
    while frontier:
        u = frontier.popleft()
        for link, v in net.sorted_out_links(u):
            if seen[v]:
                continue
            seen[v] = 1
            parent_v[v] = u
            parent_l[v] = link
            if v == dst:
                frontier.clear()
                break
            frontier.append(v)
    if parent_l[dst] is None:
        raise RoutingError(
            f"no route from processor {src} to {dst} in topology {net.name!r}"
        )
    route: Route = []
    cur = dst
    while cur != src:
        route.append(parent_l[cur])
        cur = parent_v[cur]
    route.reverse()
    table[(src, dst)] = route
    if OBS.on:
        OBS.metrics.counter("routing.bfs_routes").inc()
        OBS.metrics.histogram("routing.route_length").observe(float(len(route)))
        OBS.emit(
            "route_probed",
            policy="bfs",
            src=src,
            dst=dst,
            hops=len(route),
            links=[l.lid for l in route],
        )
    return route


#: label used for unlabeled vertices; module-level so identity comparison
#: distinguishes "never labeled" without allocating per relaxation
_UNLABELED: tuple[float, int] = (float("inf"), 0)


def dijkstra_route(
    net: NetworkTopology,
    src: VertexId,
    dst: VertexId,
    ready_time: float,
    probe: LinkProbe,
    lower_bound: LinkProbe | None = None,
) -> Route:
    """Contention-aware route: minimize the communication's arrival time.

    ``probe(link, t)`` must return the finish time of the communication on
    ``link`` when the data is available to enter the link at time ``t``; it
    must be monotone in ``t`` (later availability never finishes earlier),
    which holds for every insertion policy in :mod:`repro.linksched`.  Under
    that assumption this is a standard label-setting Dijkstra on arrival
    times.

    ``lower_bound(link, t)``, when given, must return a value ``<=``
    ``probe(link, t)`` (typically the contention-free ``t + cost / speed``).
    When even the bound cannot improve the target vertex's current label,
    the (much more expensive) ``probe`` is skipped.  Because the actual
    arrival can only be later, the skipped relaxation could never have
    updated the label — routes are unchanged.  The bound also prunes
    against the **destination's** current label: an update whose bound is
    *strictly* above it would give its target a label that pops only after
    ``dst``, where the search stops, so skipping it changes neither the
    popped-vertex sequence nor the returned route (ties are never pruned
    this way — an equal-arrival label with fewer hops can still pop first
    and matter).  Against an unlabeled target the bound alone can never
    prune, so it is skipped there — except while observability is on,
    where the callable is invoked on every relaxation so callers may hang
    per-relaxation bookkeeping (probe counters) on it.

    Equal arrival times are broken toward **fewer hops**: with cut-through
    communication an idle detour often finishes exactly when the direct
    route does, and preferring the short route avoids squandering link
    capacity that later edges will need (the paper's "route paths with
    relatively low network workload").
    """
    _check_endpoints(net, src, dst)
    if src == dst:
        return []
    if ready_time < 0:
        raise RoutingError(f"negative ready time {ready_time}")
    # Vertex ids are dense ``0..n-1`` (sequential assignment, no removal), so
    # labels, parents, and the done flags live in flat arrays — the relax
    # loop's inner reads are list indexing instead of dict/set lookups.
    n = net.num_vertices
    inf = _UNLABELED[0]
    dist_t: list[float] = [inf] * n
    dist_h: list[int] = [0] * n
    parent_v: list[VertexId] = [-1] * n
    parent_l: list[Link | None] = [None] * n
    done = bytearray(n)
    dist_t[src] = ready_time
    # Heap entries carry (arrival, hops, vertex id); hops then vertex id are
    # the deterministic tie-breaks.
    heap: list[tuple[float, int, VertexId]] = [(ready_time, 0, src)]
    relaxations = 0
    cutoffs = 0
    out_links = net.sorted_out_links
    obs_on = OBS.on
    has_bound = lower_bound is not None
    best_dst = inf
    while heap:
        d, hops, u = heappop(heap)
        if done[u]:
            continue
        done[u] = 1
        if u == dst:
            break
        nh = hops + 1
        for link, v in out_links(u):
            if done[v]:
                continue
            relaxations += 1
            cur_t = dist_t[v]
            if has_bound and (cur_t != inf or best_dst != inf or obs_on):
                # Tuple-free ``(lower_bound, nh) >= (cur_t, cur_h)``
                # comparison, plus the strictly-worse-than-destination prune
                # (see docstring).
                lb = lower_bound(link, d)
                if lb > cur_t or (lb == cur_t and nh >= dist_h[v]) or lb > best_dst:
                    cutoffs += 1
                    continue
            arrival = probe(link, d)
            if arrival < d:
                raise RoutingError(
                    f"probe on link {link.lid} returned arrival {arrival} earlier "
                    f"than availability {d}"
                )
            if arrival < cur_t or (arrival == cur_t and nh < dist_h[v]):
                dist_t[v] = arrival
                dist_h[v] = nh
                parent_v[v] = u
                parent_l[v] = link
                heappush(heap, (arrival, nh, v))
                if v == dst:
                    best_dst = arrival
    if parent_l[dst] is None:
        raise RoutingError(
            f"no route from processor {src} to {dst} in topology {net.name!r}"
        )
    route: Route = []
    cur = dst
    while cur != src:
        route.append(parent_l[cur])
        cur = parent_v[cur]
    route.reverse()
    if OBS.on:
        OBS.metrics.counter("routing.dijkstra_routes").inc()
        OBS.metrics.counter("routing.relaxations").inc(relaxations)
        if cutoffs:
            OBS.metrics.counter("routing.probe_cutoffs").inc(cutoffs)
        OBS.metrics.histogram("routing.route_length").observe(float(len(route)))
        OBS.emit(
            "route_probed",
            t=dist_t[dst],
            policy="dijkstra",
            src=src,
            dst=dst,
            hops=len(route),
            relaxations=relaxations,
            arrival=dist_t[dst],
            links=[l.lid for l in route],
        )
    return route
