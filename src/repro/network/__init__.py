"""Network topology model: processors, switches, links and routing.

Implements the paper's ``TG = {N, P, D, H}`` (Section 2.2): network vertices
``N`` are processors ``P`` plus switches, ``D`` are directed point-to-point
links and ``H`` are hyperedges (buses).  Links are the schedulable resources
edge scheduling operates on.
"""

from repro.network.topology import Vertex, Link, NetworkTopology, Route
from repro.network.builders import (
    fully_connected,
    switched_cluster,
    linear_array,
    ring,
    mesh2d,
    torus2d,
    hypercube,
    fat_tree,
    shared_bus,
    random_wan,
    torus3d,
    dragonfly,
)
from repro.network.routing import (
    HierarchicalRouter,
    bfs_route,
    dijkstra_route,
    equal_cost_routes,
)
from repro.network.fabrics import (
    FabricCounts,
    FABRIC_BUILDERS,
    build_fabric,
    fabric_for_procs,
    fabric_plan,
    kary_fat_tree,
    leaf_spine,
    torus_fabric,
    validate_fabric,
)
from repro.network.validate import validate_topology
from repro.network.io import topology_to_json, topology_from_json, topology_to_dot

__all__ = [
    "Vertex",
    "Link",
    "NetworkTopology",
    "Route",
    "fully_connected",
    "switched_cluster",
    "linear_array",
    "ring",
    "mesh2d",
    "torus2d",
    "hypercube",
    "fat_tree",
    "shared_bus",
    "random_wan",
    "torus3d",
    "dragonfly",
    "bfs_route",
    "dijkstra_route",
    "equal_cost_routes",
    "HierarchicalRouter",
    "FabricCounts",
    "FABRIC_BUILDERS",
    "build_fabric",
    "fabric_for_procs",
    "fabric_plan",
    "kary_fat_tree",
    "leaf_spine",
    "torus_fabric",
    "validate_fabric",
    "validate_topology",
    "topology_to_json",
    "topology_from_json",
    "topology_to_dot",
]
