"""Topology builders: classic interconnects plus the paper's random WAN.

All builders accept either a scalar processor/link speed (homogeneous) or a
callable/range drawn from a seeded RNG (heterogeneous, the paper's U(1, 10)).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.exceptions import TopologyError
from repro.network.topology import NetworkTopology, Vertex
from repro.utils.rng import as_rng

SpeedSpec = float | tuple[float, float] | Callable[[], float]


def _speed_sampler(spec: SpeedSpec, rng: np.random.Generator) -> Callable[[], float]:
    """Normalize a speed spec: scalar, (lo, hi) integer-uniform, or callable."""
    if callable(spec):
        return spec
    if isinstance(spec, tuple):
        lo, hi = spec
        if lo <= 0 or hi < lo:
            raise TopologyError(f"invalid speed range {spec}")
        return lambda: float(rng.integers(int(lo), int(hi) + 1))
    value = float(spec)
    if value <= 0:
        raise TopologyError(f"invalid speed {spec}")
    return lambda: value


def _add_processors(
    net: NetworkTopology, n: int, speed: SpeedSpec, rng: np.random.Generator
) -> list[Vertex]:
    if n < 1:
        raise TopologyError(f"need at least one processor, got {n}")
    sample = _speed_sampler(speed, rng)
    return [net.add_processor(sample()) for _ in range(n)]


def fully_connected(
    n_procs: int,
    proc_speed: SpeedSpec = 1.0,
    link_speed: SpeedSpec = 1.0,
    rng: int | np.random.Generator | None = None,
) -> NetworkTopology:
    """Every processor pair directly cabled (the classic-model topology)."""
    gen = as_rng(rng)
    net = NetworkTopology(name=f"fully_connected-{n_procs}")
    procs = _add_processors(net, n_procs, proc_speed, gen)
    lspeed = _speed_sampler(link_speed, gen)
    for i in range(n_procs):
        for j in range(i + 1, n_procs):
            net.connect(procs[i], procs[j], lspeed())
    return net


def switched_cluster(
    n_procs: int,
    proc_speed: SpeedSpec = 1.0,
    link_speed: SpeedSpec = 1.0,
    rng: int | np.random.Generator | None = None,
) -> NetworkTopology:
    """A star: one central switch, every processor cabled to it."""
    gen = as_rng(rng)
    net = NetworkTopology(name=f"switched_cluster-{n_procs}")
    procs = _add_processors(net, n_procs, proc_speed, gen)
    switch = net.add_switch("hub")
    lspeed = _speed_sampler(link_speed, gen)
    for p in procs:
        net.connect(p, switch, lspeed())
    return net


def linear_array(
    n_procs: int,
    proc_speed: SpeedSpec = 1.0,
    link_speed: SpeedSpec = 1.0,
    rng: int | np.random.Generator | None = None,
) -> NetworkTopology:
    """Processors in a line, neighbours cabled."""
    gen = as_rng(rng)
    net = NetworkTopology(name=f"linear-{n_procs}")
    procs = _add_processors(net, n_procs, proc_speed, gen)
    lspeed = _speed_sampler(link_speed, gen)
    for a, b in zip(procs, procs[1:]):
        net.connect(a, b, lspeed())
    return net


def ring(
    n_procs: int,
    proc_speed: SpeedSpec = 1.0,
    link_speed: SpeedSpec = 1.0,
    rng: int | np.random.Generator | None = None,
) -> NetworkTopology:
    """Processors in a cycle."""
    if n_procs < 3:
        raise TopologyError(f"a ring needs at least 3 processors, got {n_procs}")
    gen = as_rng(rng)
    net = NetworkTopology(name=f"ring-{n_procs}")
    procs = _add_processors(net, n_procs, proc_speed, gen)
    lspeed = _speed_sampler(link_speed, gen)
    for a, b in zip(procs, procs[1:]):
        net.connect(a, b, lspeed())
    net.connect(procs[-1], procs[0], lspeed())
    return net


def mesh2d(
    rows: int,
    cols: int,
    proc_speed: SpeedSpec = 1.0,
    link_speed: SpeedSpec = 1.0,
    rng: int | np.random.Generator | None = None,
    *,
    wrap: bool = False,
) -> NetworkTopology:
    """A rows x cols processor mesh; ``wrap=True`` makes it a torus."""
    if rows < 1 or cols < 1:
        raise TopologyError(f"mesh needs positive dimensions, got {rows}x{cols}")
    gen = as_rng(rng)
    kind = "torus2d" if wrap else "mesh2d"
    net = NetworkTopology(name=f"{kind}-{rows}x{cols}")
    procs = _add_processors(net, rows * cols, proc_speed, gen)
    lspeed = _speed_sampler(link_speed, gen)

    def at(r: int, c: int) -> Vertex:
        return procs[r * cols + c]

    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                net.connect(at(r, c), at(r, c + 1), lspeed())
            elif wrap and cols > 2:
                net.connect(at(r, c), at(r, 0), lspeed())
            if r + 1 < rows:
                net.connect(at(r, c), at(r + 1, c), lspeed())
            elif wrap and rows > 2:
                net.connect(at(r, c), at(0, c), lspeed())
    return net


def torus2d(
    rows: int,
    cols: int,
    proc_speed: SpeedSpec = 1.0,
    link_speed: SpeedSpec = 1.0,
    rng: int | np.random.Generator | None = None,
) -> NetworkTopology:
    """A rows x cols wrap-around mesh."""
    return mesh2d(rows, cols, proc_speed, link_speed, rng, wrap=True)


def hypercube(
    dim: int,
    proc_speed: SpeedSpec = 1.0,
    link_speed: SpeedSpec = 1.0,
    rng: int | np.random.Generator | None = None,
) -> NetworkTopology:
    """A ``dim``-dimensional binary hypercube of 2**dim processors."""
    if dim < 1:
        raise TopologyError(f"hypercube dimension must be >= 1, got {dim}")
    gen = as_rng(rng)
    net = NetworkTopology(name=f"hypercube-{dim}")
    procs = _add_processors(net, 2**dim, proc_speed, gen)
    lspeed = _speed_sampler(link_speed, gen)
    for i in range(2**dim):
        for d in range(dim):
            j = i ^ (1 << d)
            if j > i:
                net.connect(procs[i], procs[j], lspeed())
    return net


def fat_tree(
    n_procs: int,
    procs_per_leaf: int = 4,
    proc_speed: SpeedSpec = 1.0,
    link_speed: SpeedSpec = 1.0,
    rng: int | np.random.Generator | None = None,
    *,
    uplink_factor: float = 2.0,
) -> NetworkTopology:
    """Two-level switch tree; uplinks are ``uplink_factor`` x faster ("fatter")."""
    if procs_per_leaf < 1:
        raise TopologyError(f"procs_per_leaf must be >= 1, got {procs_per_leaf}")
    gen = as_rng(rng)
    net = NetworkTopology(name=f"fat_tree-{n_procs}")
    procs = _add_processors(net, n_procs, proc_speed, gen)
    lspeed = _speed_sampler(link_speed, gen)
    root = net.add_switch("root")
    for base in range(0, n_procs, procs_per_leaf):
        leaf = net.add_switch(f"leaf{base // procs_per_leaf}")
        edge_speed = lspeed()
        for p in procs[base : base + procs_per_leaf]:
            net.connect(p, leaf, edge_speed)
        net.connect(leaf, root, edge_speed * uplink_factor)
    return net


def shared_bus(
    n_procs: int,
    proc_speed: SpeedSpec = 1.0,
    bus_speed: SpeedSpec = 1.0,
    rng: int | np.random.Generator | None = None,
) -> NetworkTopology:
    """All processors on one half-duplex bus (maximum contention)."""
    if n_procs < 2:
        raise TopologyError(f"a bus needs at least 2 processors, got {n_procs}")
    gen = as_rng(rng)
    net = NetworkTopology(name=f"bus-{n_procs}")
    procs = _add_processors(net, n_procs, proc_speed, gen)
    sample = _speed_sampler(bus_speed, gen)
    net.add_bus(procs, sample())
    return net


def random_wan(
    n_procs: int,
    rng: int | np.random.Generator | None = None,
    *,
    proc_speed: SpeedSpec = 1.0,
    link_speed: SpeedSpec = 1.0,
    procs_per_switch: tuple[int, int] = (4, 16),
    extra_backbone_density: float = 0.3,
) -> NetworkTopology:
    """The paper's Section 6 topology.

    Each switch connects ``U(4, 16)`` processors; switches form a random
    connected backbone ("there exists a path between any pair of switches;
    the switches are connected randomly").  The backbone is a random spanning
    tree plus extra random switch-switch cables with the given density.
    """
    if n_procs < 1:
        raise TopologyError(f"need at least one processor, got {n_procs}")
    lo, hi = procs_per_switch
    if lo < 1 or hi < lo:
        raise TopologyError(f"invalid procs_per_switch range {procs_per_switch}")
    gen = as_rng(rng)
    net = NetworkTopology(name=f"random_wan-{n_procs}")
    procs = _add_processors(net, n_procs, proc_speed, gen)
    lspeed = _speed_sampler(link_speed, gen)

    # Partition processors among switches, U(lo, hi) per switch.
    switches: list[Vertex] = []
    i = 0
    while i < n_procs:
        take = int(gen.integers(lo, hi + 1))
        switch = net.add_switch()
        switches.append(switch)
        for p in procs[i : i + take]:
            net.connect(p, switch, lspeed())
        i += take

    # Random connected backbone: random-order spanning tree, then extras.
    if len(switches) > 1:
        order = list(gen.permutation(len(switches)))
        for idx in range(1, len(order)):
            a = switches[order[idx]]
            b = switches[order[int(gen.integers(0, idx))]]
            net.connect(a, b, lspeed())
        for x in range(len(switches)):
            for y in range(x + 1, len(switches)):
                if gen.random() < extra_backbone_density:
                    net.connect(switches[x], switches[y], lspeed())
    return net


TOPOLOGY_BUILDERS: dict[str, Callable[..., NetworkTopology]] = {
    "fully_connected": fully_connected,
    "switched_cluster": switched_cluster,
    "linear_array": linear_array,
    "ring": ring,
    "mesh2d": mesh2d,
    "torus2d": torus2d,
    "hypercube": hypercube,
    "fat_tree": fat_tree,
    "shared_bus": shared_bus,
    "random_wan": random_wan,
}


def torus3d(
    dims: tuple[int, int, int],
    proc_speed: SpeedSpec = 1.0,
    link_speed: SpeedSpec = 1.0,
    rng: int | np.random.Generator | None = None,
) -> NetworkTopology:
    """A 3-D wrap-around mesh (the classic HPC torus), ``x*y*z`` processors."""
    x, y, z = dims
    if min(x, y, z) < 1:
        raise TopologyError(f"torus3d needs positive dimensions, got {dims}")
    gen = as_rng(rng)
    net = NetworkTopology(name=f"torus3d-{x}x{y}x{z}")
    procs = _add_processors(net, x * y * z, proc_speed, gen)
    lspeed = _speed_sampler(link_speed, gen)

    def at(i: int, j: int, k: int) -> Vertex:
        return procs[(i * y + j) * z + k]

    for i in range(x):
        for j in range(y):
            for k in range(z):
                for d, n in ((x, (i + 1, j, k)), (y, (i, j + 1, k)), (z, (i, j, k + 1))):
                    ii, jj, kk = n
                    if (ii < x and jj < y and kk < z):
                        net.connect(at(i, j, k), at(ii, jj, kk), lspeed())
                    elif d > 2:  # wrap, avoiding duplicate cables on dims <= 2
                        net.connect(at(i, j, k), at(ii % x, jj % y, kk % z), lspeed())
    return net


def dragonfly(
    groups: int = 4,
    routers_per_group: int = 4,
    procs_per_router: int = 2,
    proc_speed: SpeedSpec = 1.0,
    link_speed: SpeedSpec = 1.0,
    rng: int | np.random.Generator | None = None,
    *,
    global_factor: float = 2.0,
) -> NetworkTopology:
    """A dragonfly: all-to-all routers inside each group, one global link
    between every group pair; global links are ``global_factor`` x faster."""
    if groups < 2 or routers_per_group < 1 or procs_per_router < 1:
        raise TopologyError(
            f"dragonfly needs groups >= 2, routers >= 1, procs >= 1, got "
            f"({groups}, {routers_per_group}, {procs_per_router})"
        )
    gen = as_rng(rng)
    net = NetworkTopology(name=f"dragonfly-{groups}x{routers_per_group}x{procs_per_router}")
    lspeed = _speed_sampler(link_speed, gen)
    pspeed = _speed_sampler(proc_speed, gen)
    routers: list[list[Vertex]] = []
    for g in range(groups):
        group_routers = [net.add_switch(f"g{g}r{r}") for r in range(routers_per_group)]
        for r in group_routers:
            for _ in range(procs_per_router):
                net.connect(net.add_processor(pspeed()), r, lspeed())
        for a in range(routers_per_group):
            for b in range(a + 1, routers_per_group):
                net.connect(group_routers[a], group_routers[b], lspeed())
        routers.append(group_routers)
    for ga in range(groups):
        for gb in range(ga + 1, groups):
            # One global link per group pair, spread across routers.
            a = routers[ga][gb % routers_per_group]
            b = routers[gb][ga % routers_per_group]
            net.connect(a, b, lspeed() * global_factor)
    return net

TOPOLOGY_BUILDERS["torus3d"] = torus3d
TOPOLOGY_BUILDERS["dragonfly"] = dragonfly
