"""Datacenter fabric generators: k-ary fat-tree, leaf-spine, 2D/3D torus.

The paper evaluates on random WAN-like switch graphs; production scheduling
happens on *regular* fabrics whose structure routing can exploit.  Each
builder here emits an ordinary :class:`~repro.network.topology
.NetworkTopology` (switch + processor vertices, full-duplex point-to-point
cables) **plus** a :class:`FabricPlan` describing the structure — pod
membership, tier switch ids, the link between any wired vertex pair — and
attaches a :class:`~repro.network.routing.HierarchicalRouter` built from
that plan, so every engine's ``bfs_route`` call is transparently served
from sharded, lazily materialized per-pod route tables.

Route identity contract
-----------------------

The canonical route between two processors is *defined* as the route flat
BFS (link-id tie-break) returns on the same topology.  Fat-tree and
leaf-spine plans reproduce it analytically in O(route length): cables are
created hosts-before-uplinks per switch and pod-major across tiers, so the
BFS expansion always discovers the lowest-indexed aggregation/spine/core
choice first, and the analytic "smallest-id up-path, forced down-path"
selection coincides with the BFS parent chain.  The torus has no such
tree-shaped argument, so its plan lets the router fall back to the exact
shared BFS — regularity is still exploited for the ECMP set enumeration,
the closed-form invariants, and the per-slab sharding.
``tests/test_routing_equivalence.py`` checks the identity pairwise against
a router-less clone for every fabric family.

Determinism: with scalar speeds a builder is a pure function of its
parameters — two calls yield byte-identical
:func:`~repro.network.io.topology_to_json` documents.  Heterogeneous
speeds come from a seeded RNG, like every other builder.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro.exceptions import RoutingError, TopologyError
from repro.network.builders import SpeedSpec, TOPOLOGY_BUILDERS, _speed_sampler
from repro.network.routing import HierarchicalRouter, equal_cost_routes
from repro.network.topology import Link, NetworkTopology, Route, Vertex
from repro.network.validate import validate_topology
from repro.types import VertexId
from repro.utils.rng import as_rng

__all__ = [
    "FabricCounts",
    "FatTreePlan",
    "LeafSpinePlan",
    "TorusPlan",
    "kary_fat_tree",
    "leaf_spine",
    "torus_fabric",
    "FABRIC_BUILDERS",
    "build_fabric",
    "fabric_plan",
    "validate_fabric",
    "fabric_for_procs",
]

#: link map: ``(u, v) -> the directed link u->v`` recorded at cable creation
LinkOf = dict[tuple[VertexId, VertexId], Link]


@dataclass(frozen=True)
class FabricCounts:
    """Closed-form structural expectations of a fabric instance.

    ``diameter`` is the canonical-route hop bound between any two distinct
    processors of the *uncapped* fabric; ``ecmp_width`` the maximum
    equal-cost path multiplicity over processor pairs.
    """

    processors: int
    switches: int
    cables: int
    diameter: int
    ecmp_width: int


def _cable(
    net: NetworkTopology,
    link_of: LinkOf,
    u: Vertex,
    v: Vertex,
    speed: float,
) -> None:
    """Create one full-duplex cable and record both directed links."""
    fwd, bwd = net.connect(u, v, speed)
    link_of[(u.vid, v.vid)] = fwd
    link_of[(v.vid, u.vid)] = bwd


def _check_degree(
    net: NetworkTopology, vid: VertexId, expected: int, role: str
) -> None:
    actual = len(net.out_links(vid))
    if actual != expected:
        raise TopologyError(
            f"{role} {vid} has {actual} cable(s), expected {expected}"
        )


def _check_link_map(net: NetworkTopology, link_of: LinkOf) -> None:
    for (u, v), link in link_of.items():
        if net.link(link.lid) is not link:
            raise TopologyError(
                f"link map entry ({u}, {v}) references unregistered link {link.lid}"
            )
        if link.src != u or link.dst != v:
            raise TopologyError(
                f"link map entry ({u}, {v}) points at link {link.lid} "
                f"({link.src} -> {link.dst})"
            )


# ---------------------------------------------------------------------------
# k-ary fat-tree
# ---------------------------------------------------------------------------


class FatTreePlan:
    """Structure of a k-ary fat-tree (Clos): k pods, 3 switch tiers.

    Pod ``p`` holds ``k/2`` edge and ``k/2`` aggregation switches; edge
    switch ``e`` hosts up to ``hosts_per_edge`` processors; aggregation
    switch ``a`` uplinks to cores ``a*(k/2) .. (a+1)*(k/2)-1``, so every
    core reaches exactly one aggregation switch per pod.  Shard key = pod.
    """

    kind = "fat_tree"

    def __init__(
        self,
        k: int,
        hosts_per_edge: int,
        host_loc: dict[VertexId, tuple[int, int, int]],
        edge_sw: list[list[VertexId]],
        agg_sw: list[list[VertexId]],
        core_sw: list[VertexId],
        link_of: LinkOf,
    ) -> None:
        self.k = k
        self.hosts_per_edge = hosts_per_edge
        self.host_loc = host_loc
        self.edge_sw = edge_sw
        self.agg_sw = agg_sw
        self.core_sw = core_sw
        self.link_of = link_of

    def _loc(self, vid: VertexId) -> tuple[int, int, int]:
        try:
            return self.host_loc[vid]
        except KeyError:
            raise RoutingError(
                f"vertex {vid} is not a fat-tree host processor"
            ) from None

    def shard_of(self, vid: VertexId) -> int:
        return self._loc(vid)[0]

    def canonical_route(
        self, net: NetworkTopology, src: VertexId, dst: VertexId
    ) -> Route | None:
        ps, es, _ = self._loc(src)
        pd, ed, _ = self._loc(dst)
        lo = self.link_of
        e_s = self.edge_sw[ps][es]
        e_d = self.edge_sw[pd][ed]
        if e_s == e_d:
            return [lo[(src, e_s)], lo[(e_s, dst)]]
        # The BFS tie-break always climbs through the lowest-indexed
        # aggregation switch of the source pod (its uplink ids are smallest)
        # and, across pods, through that switch's lowest core; the way back
        # down is structurally forced (one core<->agg choice per pod, one
        # edge switch per destination host).
        a_up = self.agg_sw[ps][0]
        if ps == pd:
            return [
                lo[(src, e_s)], lo[(e_s, a_up)], lo[(a_up, e_d)], lo[(e_d, dst)],
            ]
        core = self.core_sw[0]
        a_down = self.agg_sw[pd][0]
        return [
            lo[(src, e_s)], lo[(e_s, a_up)], lo[(a_up, core)],
            lo[(core, a_down)], lo[(a_down, e_d)], lo[(e_d, dst)],
        ]

    def equal_cost_routes(
        self,
        net: NetworkTopology,
        src: VertexId,
        dst: VertexId,
        max_paths: int,
    ) -> list[Route]:
        ps, es, _ = self._loc(src)
        pd, ed, _ = self._loc(dst)
        lo = self.link_of
        e_s = self.edge_sw[ps][es]
        e_d = self.edge_sw[pd][ed]
        if e_s == e_d:
            return [[lo[(src, e_s)], lo[(e_s, dst)]]]
        routes: list[Route] = []
        if ps == pd:
            # One 4-hop path per aggregation switch of the pod.
            for agg in self.agg_sw[ps][:max_paths]:
                routes.append(
                    [lo[(src, e_s)], lo[(e_s, agg)], lo[(agg, e_d)], lo[(e_d, dst)]]
                )
            return routes
        # One 6-hop path per core switch, in core-index order.
        half = self.k // 2
        for c_idx, core in enumerate(self.core_sw[:max_paths]):
            a_up = self.agg_sw[ps][c_idx // half]
            a_down = self.agg_sw[pd][c_idx // half]
            routes.append(
                [
                    lo[(src, e_s)], lo[(e_s, a_up)], lo[(a_up, core)],
                    lo[(core, a_down)], lo[(a_down, e_d)], lo[(e_d, dst)],
                ]
            )
        return routes

    def expected_counts(self) -> FabricCounts:
        k = self.k
        half = k // 2
        n_procs = len(self.host_loc)
        return FabricCounts(
            processors=n_procs,
            switches=k * k + half * half,
            cables=n_procs + k * half * half + k * half * half,
            diameter=6 if k >= 2 else 0,
            ecmp_width=half * half,
        )

    def describe(self) -> dict[str, object]:
        return {
            "kind": self.kind,
            "k": self.k,
            "pods": self.k,
            "edge_switches_per_pod": self.k // 2,
            "agg_switches_per_pod": self.k // 2,
            "core_switches": (self.k // 2) ** 2,
            "hosts_per_edge": self.hosts_per_edge,
            "hosts": len(self.host_loc),
        }

    def validate(self, net: NetworkTopology) -> None:
        """Fabric-specific structural invariants (raises TopologyError)."""
        validate_topology(net)
        _check_link_map(net, self.link_of)
        k, half = self.k, self.k // 2
        counts = self.expected_counts()
        if len(net.processors()) != counts.processors:
            raise TopologyError(
                f"fat-tree has {len(net.processors())} processors, "
                f"expected {counts.processors}"
            )
        if len(net.switches()) != counts.switches:
            raise TopologyError(
                f"fat-tree has {len(net.switches())} switches, "
                f"expected {counts.switches}"
            )
        if net.num_links != 2 * counts.cables:
            raise TopologyError(
                f"fat-tree has {net.num_links} directed links, "
                f"expected {2 * counts.cables}"
            )
        hosts_on_edge: dict[tuple[int, int], int] = {}
        for vid, (pod, edge, _) in self.host_loc.items():
            if not net.vertex(vid).is_processor:
                raise TopologyError(f"host {vid} is not a processor")
            _check_degree(net, vid, 1, "fat-tree host")
            hosts_on_edge[(pod, edge)] = hosts_on_edge.get((pod, edge), 0) + 1
        for pod in range(k):
            for i in range(half):
                n_hosts = hosts_on_edge.get((pod, i), 0)
                _check_degree(
                    net, self.edge_sw[pod][i], n_hosts + half,
                    f"edge switch p{pod}e{i}",
                )
                _check_degree(
                    net, self.agg_sw[pod][i], half + half,
                    f"aggregation switch p{pod}a{i}",
                )
        for c_idx, core in enumerate(self.core_sw):
            _check_degree(net, core, k, f"core switch c{c_idx}")


def kary_fat_tree(
    k: int,
    *,
    hosts_per_edge: int | None = None,
    n_procs: int | None = None,
    proc_speed: SpeedSpec = 1.0,
    link_speed: SpeedSpec = 1.0,
    rng: int | np.random.Generator | None = None,
) -> NetworkTopology:
    """Build a k-ary fat-tree fabric (k pods, full Clos core).

    ``hosts_per_edge`` defaults to the canonical ``k/2`` (so the full
    fabric hosts ``k^3/4`` processors); ``n_procs`` caps the total host
    count, filling pods in order — trailing edge switches may end up
    empty, which only trims leaves off the structure.
    """
    if k < 2 or k % 2 != 0:
        raise TopologyError(f"fat-tree arity must be even and >= 2, got {k}")
    half = k // 2
    hpe = half if hosts_per_edge is None else hosts_per_edge
    if hpe < 1:
        raise TopologyError(f"hosts_per_edge must be >= 1, got {hpe}")
    total = k * half * hpe
    cap = total if n_procs is None else n_procs
    if not 1 <= cap <= total:
        raise TopologyError(
            f"n_procs must be in [1, {total}] for k={k}, "
            f"hosts_per_edge={hpe}; got {n_procs}"
        )
    gen = as_rng(rng)
    net = NetworkTopology(name=f"fat_tree-k{k}-{cap}p")
    pspeed = _speed_sampler(proc_speed, gen)
    lspeed = _speed_sampler(link_speed, gen)

    # Tier order matters: hosts, then edge/agg/core switches, then cables
    # hosts-before-uplinks and pod-major — the route identity contract in
    # the module docstring hangs off this ordering.
    host_loc: dict[VertexId, tuple[int, int, int]] = {}
    hosts: dict[tuple[int, int], list[Vertex]] = {}
    remaining = cap
    for pod in range(k):
        for edge in range(half):
            take = min(hpe, remaining)
            remaining -= take
            row = [net.add_processor(pspeed()) for _ in range(take)]
            hosts[(pod, edge)] = row
            for slot, p in enumerate(row):
                host_loc[p.vid] = (pod, edge, slot)
    edge_sw = [
        [net.add_switch(f"p{pod}e{i}") for i in range(half)] for pod in range(k)
    ]
    agg_sw = [
        [net.add_switch(f"p{pod}a{i}") for i in range(half)] for pod in range(k)
    ]
    core_sw = [net.add_switch(f"c{j}") for j in range(half * half)]

    link_of: LinkOf = {}
    for pod in range(k):
        for edge in range(half):
            sw = edge_sw[pod][edge]
            for p in hosts[(pod, edge)]:
                _cable(net, link_of, p, sw, lspeed())
            for agg in agg_sw[pod]:
                _cable(net, link_of, sw, agg, lspeed())
    for pod in range(k):
        for a, agg in enumerate(agg_sw[pod]):
            for j in range(half):
                _cable(net, link_of, agg, core_sw[a * half + j], lspeed())

    plan = FatTreePlan(
        k=k,
        hosts_per_edge=hpe,
        host_loc=host_loc,
        edge_sw=[[sw.vid for sw in row] for row in edge_sw],
        agg_sw=[[sw.vid for sw in row] for row in agg_sw],
        core_sw=[sw.vid for sw in core_sw],
        link_of=link_of,
    )
    net.attach_router(HierarchicalRouter(net, plan))
    return net


# ---------------------------------------------------------------------------
# leaf-spine
# ---------------------------------------------------------------------------


class LeafSpinePlan:
    """Structure of a two-tier leaf-spine fabric.

    Every leaf switch cables to every spine switch; processors hang off
    leaves.  Shard key = leaf index.
    """

    kind = "leaf_spine"

    def __init__(
        self,
        leaves: int,
        spines: int,
        hosts_per_leaf: int,
        host_loc: dict[VertexId, tuple[int, int]],
        leaf_sw: list[VertexId],
        spine_sw: list[VertexId],
        link_of: LinkOf,
    ) -> None:
        self.leaves = leaves
        self.spines = spines
        self.hosts_per_leaf = hosts_per_leaf
        self.host_loc = host_loc
        self.leaf_sw = leaf_sw
        self.spine_sw = spine_sw
        self.link_of = link_of

    def _loc(self, vid: VertexId) -> tuple[int, int]:
        try:
            return self.host_loc[vid]
        except KeyError:
            raise RoutingError(
                f"vertex {vid} is not a leaf-spine host processor"
            ) from None

    def shard_of(self, vid: VertexId) -> int:
        return self._loc(vid)[0]

    def canonical_route(
        self, net: NetworkTopology, src: VertexId, dst: VertexId
    ) -> Route | None:
        ls, _ = self._loc(src)
        ld, _ = self._loc(dst)
        lo = self.link_of
        leaf_s = self.leaf_sw[ls]
        if ls == ld:
            return [lo[(src, leaf_s)], lo[(leaf_s, dst)]]
        # Flat BFS always crosses through spine 0: each leaf's uplinks are
        # created in spine order, so spine 0 is both the first level-2
        # vertex expanded and the first to discover every other leaf.
        spine = self.spine_sw[0]
        leaf_d = self.leaf_sw[ld]
        return [
            lo[(src, leaf_s)], lo[(leaf_s, spine)],
            lo[(spine, leaf_d)], lo[(leaf_d, dst)],
        ]

    def equal_cost_routes(
        self,
        net: NetworkTopology,
        src: VertexId,
        dst: VertexId,
        max_paths: int,
    ) -> list[Route]:
        ls, _ = self._loc(src)
        ld, _ = self._loc(dst)
        lo = self.link_of
        leaf_s = self.leaf_sw[ls]
        if ls == ld:
            return [[lo[(src, leaf_s)], lo[(leaf_s, dst)]]]
        leaf_d = self.leaf_sw[ld]
        return [
            [
                lo[(src, leaf_s)], lo[(leaf_s, spine)],
                lo[(spine, leaf_d)], lo[(leaf_d, dst)],
            ]
            for spine in self.spine_sw[:max_paths]
        ]

    def expected_counts(self) -> FabricCounts:
        n_procs = len(self.host_loc)
        multi_leaf = self.leaves > 1
        return FabricCounts(
            processors=n_procs,
            switches=self.leaves + self.spines,
            cables=n_procs + self.leaves * self.spines,
            diameter=4 if multi_leaf else 2,
            ecmp_width=self.spines if multi_leaf else 1,
        )

    def describe(self) -> dict[str, object]:
        return {
            "kind": self.kind,
            "leaves": self.leaves,
            "spines": self.spines,
            "hosts_per_leaf": self.hosts_per_leaf,
            "hosts": len(self.host_loc),
        }

    def validate(self, net: NetworkTopology) -> None:
        validate_topology(net)
        _check_link_map(net, self.link_of)
        counts = self.expected_counts()
        if len(net.processors()) != counts.processors:
            raise TopologyError(
                f"leaf-spine has {len(net.processors())} processors, "
                f"expected {counts.processors}"
            )
        if len(net.switches()) != counts.switches:
            raise TopologyError(
                f"leaf-spine has {len(net.switches())} switches, "
                f"expected {counts.switches}"
            )
        if net.num_links != 2 * counts.cables:
            raise TopologyError(
                f"leaf-spine has {net.num_links} directed links, "
                f"expected {2 * counts.cables}"
            )
        hosts_on_leaf: dict[int, int] = {}
        for vid, (leaf, _) in self.host_loc.items():
            if not net.vertex(vid).is_processor:
                raise TopologyError(f"host {vid} is not a processor")
            _check_degree(net, vid, 1, "leaf-spine host")
            hosts_on_leaf[leaf] = hosts_on_leaf.get(leaf, 0) + 1
        for i, leaf in enumerate(self.leaf_sw):
            _check_degree(
                net, leaf, hosts_on_leaf.get(i, 0) + self.spines,
                f"leaf switch l{i}",
            )
        for i, spine in enumerate(self.spine_sw):
            _check_degree(net, spine, self.leaves, f"spine switch s{i}")


def leaf_spine(
    leaves: int,
    spines: int,
    hosts_per_leaf: int,
    *,
    n_procs: int | None = None,
    proc_speed: SpeedSpec = 1.0,
    link_speed: SpeedSpec = 1.0,
    spine_factor: float = 1.0,
    rng: int | np.random.Generator | None = None,
) -> NetworkTopology:
    """Build a two-tier leaf-spine fabric.

    ``spine_factor`` scales the leaf-spine uplink speed relative to the
    host links (oversubscribed fabrics use > 1).  ``n_procs`` caps the
    host count, filling leaves in order.
    """
    if leaves < 1 or spines < 1 or hosts_per_leaf < 1:
        raise TopologyError(
            f"leaf-spine needs leaves >= 1, spines >= 1, hosts_per_leaf >= 1; "
            f"got ({leaves}, {spines}, {hosts_per_leaf})"
        )
    if spine_factor <= 0:
        raise TopologyError(f"spine_factor must be positive, got {spine_factor}")
    total = leaves * hosts_per_leaf
    cap = total if n_procs is None else n_procs
    if not 1 <= cap <= total:
        raise TopologyError(
            f"n_procs must be in [1, {total}] for {leaves} leaves x "
            f"{hosts_per_leaf} hosts; got {n_procs}"
        )
    gen = as_rng(rng)
    net = NetworkTopology(name=f"leaf_spine-{leaves}x{spines}-{cap}p")
    pspeed = _speed_sampler(proc_speed, gen)
    lspeed = _speed_sampler(link_speed, gen)

    host_loc: dict[VertexId, tuple[int, int]] = {}
    hosts: dict[int, list[Vertex]] = {}
    remaining = cap
    for leaf in range(leaves):
        take = min(hosts_per_leaf, remaining)
        remaining -= take
        row = [net.add_processor(pspeed()) for _ in range(take)]
        hosts[leaf] = row
        for slot, p in enumerate(row):
            host_loc[p.vid] = (leaf, slot)
    leaf_sw = [net.add_switch(f"l{i}") for i in range(leaves)]
    spine_sw = [net.add_switch(f"s{i}") for i in range(spines)]

    link_of: LinkOf = {}
    for leaf in range(leaves):
        sw = leaf_sw[leaf]
        for p in hosts[leaf]:
            _cable(net, link_of, p, sw, lspeed())
        for spine in spine_sw:
            _cable(net, link_of, sw, spine, lspeed() * spine_factor)

    plan = LeafSpinePlan(
        leaves=leaves,
        spines=spines,
        hosts_per_leaf=hosts_per_leaf,
        host_loc=host_loc,
        leaf_sw=[sw.vid for sw in leaf_sw],
        spine_sw=[sw.vid for sw in spine_sw],
        link_of=link_of,
    )
    net.attach_router(HierarchicalRouter(net, plan))
    return net


# ---------------------------------------------------------------------------
# 2D / 3D torus
# ---------------------------------------------------------------------------


def _wrap_distance(a: int, b: int, size: int) -> int:
    d = abs(a - b)
    return min(d, size - d)


class TorusPlan:
    """Structure of a wrap-around 2D/3D switch torus with attached hosts.

    Each grid node is one switch with up to ``hosts_per_node`` processors.
    The torus has no tree decomposition that pins down the flat-BFS
    tie-break analytically, so :meth:`canonical_route` declines and the
    router materializes routes through the exact shared BFS; the plan still
    supplies closed-form invariants, dimension-ordered ECMP enumeration,
    and per-slab (first coordinate) sharding.  Shard key = x-coordinate.
    """

    kind = "torus"

    def __init__(
        self,
        dims: tuple[int, ...],
        hosts_per_node: int,
        host_loc: dict[VertexId, tuple[tuple[int, ...], int]],
        node_sw: list[VertexId],
        link_of: LinkOf,
    ) -> None:
        self.dims = dims
        self.hosts_per_node = hosts_per_node
        self.host_loc = host_loc
        self.node_sw = node_sw
        self.link_of = link_of

    def _loc(self, vid: VertexId) -> tuple[tuple[int, ...], int]:
        try:
            return self.host_loc[vid]
        except KeyError:
            raise RoutingError(
                f"vertex {vid} is not a torus host processor"
            ) from None

    def node_index(self, coords: tuple[int, ...]) -> int:
        idx = 0
        for size, c in zip(self.dims, coords):
            idx = idx * size + c
        return idx

    def shard_of(self, vid: VertexId) -> int:
        return self._loc(vid)[0][0]

    def min_hops(self, src: VertexId, dst: VertexId) -> int:
        """Closed-form canonical route length between two hosts."""
        (cs, _), (cd, _) = self._loc(src), self._loc(dst)
        if cs == cd:
            return 2 if src != dst else 0
        manhattan = sum(
            _wrap_distance(a, b, size)
            for a, b, size in zip(cs, cd, self.dims)
        )
        return manhattan + 2

    def path_multiplicity(self, src: VertexId, dst: VertexId) -> int:
        """Closed-form ECMP set size between two hosts.

        Multinomial over the per-dimension step counts, doubled once per
        dimension whose wrap distance ties both directions (even size >= 4,
        offset exactly size/2 — on a size-2 dimension both "directions" are
        the same physical cable, so no doubling).
        """
        (cs, _), (cd, _) = self._loc(src), self._loc(dst)
        if cs == cd:
            return 1
        steps = [
            _wrap_distance(a, b, size)
            for a, b, size in zip(cs, cd, self.dims)
        ]
        ties = sum(
            1
            for a, b, size in zip(cs, cd, self.dims)
            if size >= 4 and abs(a - b) * 2 == size
        )
        count = math.factorial(sum(steps))
        for s in steps:
            count //= math.factorial(s)
        return count * (2 ** ties)

    def canonical_route(
        self, net: NetworkTopology, src: VertexId, dst: VertexId
    ) -> Route | None:
        return None  # defer to the exact shared BFS (see class docstring)

    def equal_cost_routes(
        self,
        net: NetworkTopology,
        src: VertexId,
        dst: VertexId,
        max_paths: int,
    ) -> list[Route]:
        return equal_cost_routes(net, src, dst, max_paths=max_paths)

    def expected_counts(self) -> FabricCounts:
        nodes = 1
        for size in self.dims:
            nodes *= size
        cables = len(self.host_loc)
        for size in self.dims:
            lines = nodes // size
            if size >= 3:
                cables += lines * size
            elif size == 2:
                cables += lines
        radius = [size // 2 for size in self.dims]
        width = math.factorial(sum(radius))
        for r in radius:
            width //= math.factorial(r)
        width *= 2 ** sum(1 for size in self.dims if size >= 4 and size % 2 == 0)
        return FabricCounts(
            processors=len(self.host_loc),
            switches=nodes,
            cables=cables,
            diameter=sum(radius) + 2,
            ecmp_width=width,
        )

    def describe(self) -> dict[str, object]:
        return {
            "kind": self.kind,
            "dims": list(self.dims),
            "nodes": len(self.node_sw),
            "hosts_per_node": self.hosts_per_node,
            "hosts": len(self.host_loc),
        }

    def validate(self, net: NetworkTopology) -> None:
        validate_topology(net)
        _check_link_map(net, self.link_of)
        counts = self.expected_counts()
        if len(net.processors()) != counts.processors:
            raise TopologyError(
                f"torus has {len(net.processors())} processors, "
                f"expected {counts.processors}"
            )
        if len(net.switches()) != counts.switches:
            raise TopologyError(
                f"torus has {len(net.switches())} switches, "
                f"expected {counts.switches}"
            )
        if net.num_links != 2 * counts.cables:
            raise TopologyError(
                f"torus has {net.num_links} directed links, "
                f"expected {2 * counts.cables}"
            )
        hosts_on_node: dict[int, int] = {}
        for vid, (coords, _) in self.host_loc.items():
            if not net.vertex(vid).is_processor:
                raise TopologyError(f"host {vid} is not a processor")
            _check_degree(net, vid, 1, "torus host")
            idx = self.node_index(coords)
            hosts_on_node[idx] = hosts_on_node.get(idx, 0) + 1
        mesh_degree = sum(
            2 if size >= 3 else (1 if size == 2 else 0) for size in self.dims
        )
        for idx, sw in enumerate(self.node_sw):
            _check_degree(
                net, sw, hosts_on_node.get(idx, 0) + mesh_degree,
                f"torus switch n{idx}",
            )


def torus_fabric(
    dims: tuple[int, ...],
    *,
    hosts_per_node: int = 1,
    n_procs: int | None = None,
    proc_speed: SpeedSpec = 1.0,
    link_speed: SpeedSpec = 1.0,
    rng: int | np.random.Generator | None = None,
) -> NetworkTopology:
    """Build a 2D or 3D wrap-around switch torus with attached hosts."""
    if len(dims) not in (2, 3):
        raise TopologyError(f"torus dims must be 2D or 3D, got {dims}")
    if any(size < 1 for size in dims):
        raise TopologyError(f"torus dims must be positive, got {dims}")
    if hosts_per_node < 1:
        raise TopologyError(f"hosts_per_node must be >= 1, got {hosts_per_node}")
    nodes = 1
    for size in dims:
        nodes *= size
    if nodes < 2:
        raise TopologyError(f"torus needs at least 2 nodes, got dims {dims}")
    total = nodes * hosts_per_node
    cap = total if n_procs is None else n_procs
    if not 1 <= cap <= total:
        raise TopologyError(
            f"n_procs must be in [1, {total}] for dims {dims}; got {n_procs}"
        )
    gen = as_rng(rng)
    shape = "x".join(str(size) for size in dims)
    net = NetworkTopology(name=f"torus-{shape}-{cap}p")
    pspeed = _speed_sampler(proc_speed, gen)
    lspeed = _speed_sampler(link_speed, gen)

    def coords_iter() -> Iterator[tuple[int, ...]]:
        if len(dims) == 2:
            for x in range(dims[0]):
                for y in range(dims[1]):
                    yield (x, y)
        else:
            for x in range(dims[0]):
                for y in range(dims[1]):
                    for z in range(dims[2]):
                        yield (x, y, z)

    host_loc: dict[VertexId, tuple[tuple[int, ...], int]] = {}
    hosts: dict[tuple[int, ...], list[Vertex]] = {}
    remaining = cap
    for coords in coords_iter():
        take = min(hosts_per_node, remaining)
        remaining -= take
        row = [net.add_processor(pspeed()) for _ in range(take)]
        hosts[coords] = row
        for slot, p in enumerate(row):
            host_loc[p.vid] = (coords, slot)
    switches: dict[tuple[int, ...], Vertex] = {
        coords: net.add_switch("n" + "-".join(str(c) for c in coords))
        for coords in coords_iter()
    }

    link_of: LinkOf = {}
    for coords in coords_iter():
        sw = switches[coords]
        for p in hosts[coords]:
            _cable(net, link_of, p, sw, lspeed())
        for d, size in enumerate(dims):
            if size < 2:
                continue
            if coords[d] == size - 1 and size == 2:
                continue  # the +1 neighbour wraps onto an existing cable
            nbr = list(coords)
            nbr[d] = (coords[d] + 1) % size
            _cable(net, link_of, sw, switches[tuple(nbr)], lspeed())

    plan = TorusPlan(
        dims=tuple(dims),
        hosts_per_node=hosts_per_node,
        host_loc=host_loc,
        node_sw=[switches[coords].vid for coords in coords_iter()],
        link_of=link_of,
    )
    net.attach_router(HierarchicalRouter(net, plan))
    return net


# ---------------------------------------------------------------------------
# registry + helpers
# ---------------------------------------------------------------------------

FABRIC_BUILDERS: dict[str, Callable[..., NetworkTopology]] = {
    "fat_tree": kary_fat_tree,
    "leaf_spine": leaf_spine,
    "torus": torus_fabric,
}


def build_fabric(kind: str, /, *args: object, **kwargs: object) -> NetworkTopology:
    """Dispatch to a registered fabric builder by name."""
    try:
        builder = FABRIC_BUILDERS[kind]
    except KeyError:
        raise TopologyError(
            f"unknown fabric {kind!r}; known: {sorted(FABRIC_BUILDERS)}"
        ) from None
    return builder(*args, **kwargs)


def fabric_plan(
    net: NetworkTopology,
) -> FatTreePlan | LeafSpinePlan | TorusPlan | None:
    """The structural plan of a fabric-built topology, if one is attached."""
    router = net.attached_router
    if isinstance(router, HierarchicalRouter):
        fabric = router.fabric
        if isinstance(fabric, (FatTreePlan, LeafSpinePlan, TorusPlan)):
            return fabric
    return None


def validate_fabric(net: NetworkTopology) -> None:
    """Validate a fabric topology against its own structural plan.

    Raises :class:`TopologyError` when no plan is attached (the topology
    was mutated after construction, or never was a fabric) or when any
    closed-form invariant — tier counts, cable counts, port/degree per
    switch role, link-map consistency, connectivity — fails.
    """
    plan = fabric_plan(net)
    if plan is None:
        raise TopologyError(
            f"topology {net.name!r} has no attached fabric plan "
            "(not fabric-built, or mutated since construction)"
        )
    plan.validate(net)


def fabric_for_procs(
    kind: str,
    n_procs: int,
    rng: int | np.random.Generator | None = None,
    *,
    proc_speed: SpeedSpec = 1.0,
    link_speed: SpeedSpec = 1.0,
) -> NetworkTopology:
    """Size a fabric deterministically for an exact processor count.

    The paper sweeps ask for *P processors*, not fabric parameters; this
    picks the smallest canonical instance reaching ``P`` and caps the host
    fill at exactly ``P`` so sweep results stay comparable with the random
    WAN baseline at the same processor count.
    """
    if n_procs < 1:
        raise TopologyError(f"need at least one processor, got {n_procs}")
    if kind == "fat_tree":
        k = 2
        while k * k * k // 4 < n_procs:
            k += 2
        return kary_fat_tree(
            k, n_procs=n_procs, proc_speed=proc_speed, link_speed=link_speed,
            rng=rng,
        )
    if kind == "leaf_spine":
        hosts_per_leaf = 16
        leaves = max(1, -(-n_procs // hosts_per_leaf))
        spines = max(1, (leaves + 1) // 2)
        return leaf_spine(
            leaves, spines, hosts_per_leaf, n_procs=n_procs,
            proc_speed=proc_speed, link_speed=link_speed, rng=rng,
        )
    if kind == "torus":
        rows = max(1, math.isqrt(n_procs))
        cols = max(1, -(-n_procs // rows))
        if rows * cols < 2:
            rows, cols = 1, 2  # a 1x2 torus is the smallest valid grid
        return torus_fabric(
            (rows, cols), n_procs=n_procs,
            proc_speed=proc_speed, link_speed=link_speed, rng=rng,
        )
    raise TopologyError(
        f"unknown fabric {kind!r}; known: {sorted(FABRIC_BUILDERS)}"
    )


# Register processor-count-sized wrappers so ``repro schedule --topology``
# and the sweep configs can name fabrics exactly like the classic builders.
def _register_sized(kind: str) -> None:
    def sized(
        n_procs: int,
        proc_speed: SpeedSpec = 1.0,
        link_speed: SpeedSpec = 1.0,
        rng: int | np.random.Generator | None = None,
    ) -> NetworkTopology:
        return fabric_for_procs(
            kind, n_procs, rng, proc_speed=proc_speed, link_speed=link_speed
        )

    sized.__name__ = f"{kind}_fabric_for_procs"
    TOPOLOGY_BUILDERS[f"fabric_{kind}"] = sized


for _kind in ("fat_tree", "leaf_spine", "torus"):
    _register_sized(_kind)
