"""JSON and DOT serialization of network topologies.

The JSON form captures the *resource* level (vertices, links, adjacency)
rather than the builder calls, so a round trip reproduces link ids exactly —
required for replaying schedules.
"""

from __future__ import annotations

import json
from typing import Any

from repro.exceptions import SerializationError
from repro.network.topology import Link, NetworkTopology, Vertex

_FORMAT = "repro.network/v1"


def topology_to_json(net: NetworkTopology) -> str:
    doc = {
        "format": _FORMAT,
        "name": net.name,
        "vertices": [
            {"id": v.vid, "kind": v.kind, "speed": v.speed, "name": v.name}
            for v in net.vertices()
        ],
        "links": [
            {
                "id": l.lid,
                "speed": l.speed,
                "src": l.src,
                "dst": l.dst,
                "kind": l.kind,
                "members": list(l.members),
                "name": l.name,
            }
            for l in net.links()
        ],
        "adjacency": {
            str(v.vid): [[link.lid, nbr] for link, nbr in net.out_links(v.vid)]
            for v in net.vertices()
        },
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def topology_from_json(text: str) -> NetworkTopology:
    try:
        doc: dict[str, Any] = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("format") != _FORMAT:
        raise SerializationError(
            f"not a {_FORMAT} document (format={doc.get('format') if isinstance(doc, dict) else None!r})"
        )
    net = NetworkTopology(name=str(doc.get("name", "network")))
    try:
        for v in doc["vertices"]:
            vert = Vertex(int(v["id"]), v["kind"], float(v["speed"]), str(v.get("name", "")))
            net._vertices[vert.vid] = vert
            net._adj[vert.vid] = []
        for l in doc["links"]:
            link = Link(
                int(l["id"]), float(l["speed"]), int(l["src"]), int(l["dst"]),
                l.get("kind", "ptp"), tuple(int(m) for m in l.get("members", [])),
                str(l.get("name", "")),
            )
            net._links[link.lid] = link
        for vid_str, choices in doc["adjacency"].items():
            vid = int(vid_str)
            if vid not in net._vertices:
                raise SerializationError(f"adjacency references unknown vertex {vid}")
            for lid, nbr in choices:
                net._adj[vid].append((net._links[int(lid)], int(nbr)))
        net._next_vid = max(net._vertices, default=-1) + 1
        net._next_lid = max(net._links, default=-1) + 1
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed vertex/link record: {exc}") from exc
    return net


def topology_to_dot(net: NetworkTopology) -> str:
    """Render as Graphviz DOT; processors are boxes, switches ellipses."""
    lines = [f'graph "{net.name}" {{']
    for v in net.vertices():
        shape = "box" if v.is_processor else "ellipse"
        label = f"{v.name or v.vid}" + (f"\\ns={v.speed:g}" if v.is_processor else "")
        lines.append(f'  v{v.vid} [shape={shape}, label="{label}"];')
    drawn: set[int] = set()
    for link in net.links():
        if link.lid in drawn:
            continue
        drawn.add(link.lid)
        if link.kind == "bus":
            hub = f"bus{link.lid}"
            lines.append(f'  {hub} [shape=point, label=""];')
            for m in link.members:
                lines.append(f"  v{m} -- {hub};")
        else:
            lines.append(f'  v{link.src} -- v{link.dst} [label="{link.speed:g}"];')
    lines.append("}")
    return "\n".join(lines)
