"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``figures``  — regenerate the paper's figures (choose scale / subset;
  ``--jobs N`` fans the sweep over a process pool with identical output,
  ``--cache-dir`` / ``--no-cache`` control the on-disk result cache),
- ``schedule`` — schedule a generated workload and print report + Gantt
  (``--stats`` adds decision counters and phase timings, ``--trace-out``
  streams the decision-event log as JSONL),
- ``profile``  — time each scheduler on a common workload and print the
  per-phase cost breakdown (routing / insertion / processor selection),
- ``ablation`` — run one of the named design-choice ablations,
- ``export``   — schedule a workload and write SVG / Chrome-trace / JSON,
- ``lint``     — run the repo-specific static-analysis rules (determinism,
  float discipline, obs guards, transaction safety; see
  ``docs/static_analysis.md``),
- ``info``     — library, algorithm and registry overview.
"""

from __future__ import annotations

import argparse
import sys

from repro import __version__


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.experiments import ALL_FIGURES, ExperimentConfig, ResultCache
    from repro.experiments.cache import default_cache_dir

    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    cache = None
    if not args.no_cache:
        cache_dir = args.cache_dir if args.cache_dir else default_cache_dir()
        cache = ResultCache(cache_dir)
    names = [args.only] if args.only else sorted(ALL_FIGURES)
    for name in names:
        hetero = name in ("figure3", "figure4")
        if args.scale == "paper":
            config = ExperimentConfig.paper_scale(heterogeneous=hetero)
        elif args.scale == "smoke":
            config = ExperimentConfig.smoke(heterogeneous=hetero)
        else:
            config = ExperimentConfig.default(heterogeneous=hetero)
        fig = ALL_FIGURES[name](config, jobs=args.jobs, cache=cache)
        print(fig.to_text(plot=args.plot))
        print()
    if cache is not None:
        # Stderr so stdout stays byte-identical between cold and warm runs.
        print(f"[cache] {cache.root}: {cache.stats.to_text()}", file=sys.stderr)
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.core import SCHEDULERS
    from repro.core.validate import validate_schedule
    from repro.network.builders import TOPOLOGY_BUILDERS
    from repro.taskgraph.ccr import scale_to_ccr
    from repro.taskgraph.generators import random_layered_dag
    from repro.taskgraph.kernels import KERNELS
    from repro.viz.report import schedule_report

    if args.kernel:
        graph = KERNELS[args.kernel](args.size, rng=args.seed)
    else:
        graph = random_layered_dag(args.tasks, rng=args.seed)
    if args.ccr is not None:
        graph = scale_to_ccr(graph, args.ccr)
    builder = TOPOLOGY_BUILDERS[args.topology]
    if args.topology == "mesh2d":
        net = builder(args.procs, args.procs, rng=args.seed + 1)
    else:
        net = builder(args.procs, rng=args.seed + 1)
    observing = args.stats or args.trace_out is not None
    if observing:
        sink = obs.JsonlSink(args.trace_out) if args.trace_out else obs.ListSink()
        obs.enable(sink)
    kwargs = {}
    if args.no_incremental:
        if args.algorithm not in ("annealing", "genetic"):
            print("--no-incremental only applies to the mapping-search "
                  "schedulers (annealing, genetic)")
            return 2
        kwargs["incremental"] = False
    try:
        schedule = SCHEDULERS[args.algorithm](**kwargs).schedule(graph, net)
    finally:
        if observing:
            obs.disable()
    validate_schedule(schedule)
    print(schedule_report(schedule, gantt=not args.no_gantt))
    if args.trace_out:
        print(f"\nwrote decision-event log to {args.trace_out}")
    return 0


#: workload sizes for ``profile`` (tasks, processors)
_PROFILE_SCALES = {"smoke": (24, 8), "default": (80, 16)}


def _cmd_profile(args: argparse.Namespace) -> int:
    from time import perf_counter

    from repro import obs
    from repro.core import SCHEDULERS
    from repro.network.builders import random_wan
    from repro.taskgraph.ccr import scale_to_ccr
    from repro.taskgraph.generators import random_layered_dag
    from repro.utils.tables import format_table

    for name in args.algorithms:
        if name not in SCHEDULERS:
            print(f"unknown algorithm {name!r}; known: {sorted(SCHEDULERS)}")
            return 2
    n_tasks, n_procs = _PROFILE_SCALES[args.scale]
    graph = scale_to_ccr(random_layered_dag(n_tasks, rng=args.seed), args.ccr)
    net = random_wan(n_procs, rng=args.seed + 1)
    phases = ("routing", "insertion", "processor_selection", "task_placement")
    rows = []
    for name in args.algorithms:
        obs.enable(obs.NullSink())
        obs.reset()
        t0 = perf_counter()
        try:
            for _ in range(args.repeat):
                schedule = SCHEDULERS[name]().schedule(graph, net)
            wall = perf_counter() - t0
            stats = schedule.stats
        finally:
            obs.disable()
        timed = {p: stats.timings.get(p, {"total": 0.0})["total"] for p in phases}
        other = wall / args.repeat - sum(timed.values())
        rows.append(
            [name, f"{wall / args.repeat * 1e3:.2f}"]
            + [f"{timed[p] * 1e3:.2f}" for p in phases]
            + [f"{max(0.0, other) * 1e3:.2f}"]
        )
    print(
        f"workload: {n_tasks} tasks (CCR {args.ccr:g}) on {n_procs}-processor "
        f"random WAN, seed {args.seed}; times per schedule() call"
        + (f", wall averaged over {args.repeat} runs" if args.repeat > 1 else "")
    )
    print()
    print(
        format_table(
            ["algorithm", "wall ms", "routing", "insertion", "proc-select",
             "task-place", "other"],
            rows,
        )
    )
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    from repro.experiments.ablations import ABLATIONS, run_ablation
    from repro.experiments.config import ExperimentConfig

    names = [args.name] if args.name else sorted(ABLATIONS)
    config = ExperimentConfig.default()
    for name in names:
        result = run_ablation(name, config, ccr=args.ccr, n_procs=args.procs)
        print(f"{name} (base: {result.base}):")
        for variant, imp in result.improvements.items():
            print(f"  {variant}: {imp:+.1f}% makespan vs base")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.core import SCHEDULERS
    from repro.core.io import schedule_to_json
    from repro.core.validate import validate_schedule
    from repro.network.builders import TOPOLOGY_BUILDERS
    from repro.taskgraph.ccr import scale_to_ccr
    from repro.taskgraph.generators import random_layered_dag
    from repro.viz.svg import schedule_to_svg
    from repro.viz.trace import schedule_to_trace

    graph = random_layered_dag(args.tasks, rng=args.seed)
    if args.ccr is not None:
        graph = scale_to_ccr(graph, args.ccr)
    net = TOPOLOGY_BUILDERS[args.topology](args.procs, rng=args.seed + 1)
    schedule = SCHEDULERS[args.algorithm]().schedule(graph, net)
    validate_schedule(schedule)
    renderers = {
        "svg": schedule_to_svg,
        "trace": schedule_to_trace,
        "json": schedule_to_json,
    }
    content = renderers[args.format](schedule)
    with open(args.output, "w") as fh:
        fh.write(content)
    print(f"wrote {args.format} for {schedule.summary()} to {args.output}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import run

    return run(args)


def _cmd_info(args: argparse.Namespace) -> int:  # noqa: ARG001
    from repro.core import SCHEDULERS
    from repro.network.builders import TOPOLOGY_BUILDERS
    from repro.taskgraph.kernels import KERNELS

    print(f"repro {__version__} — contention-aware edge scheduling (Han & Wang, ICPP 2006)")
    print(f"algorithms: {', '.join(sorted(SCHEDULERS))}")
    print(f"topologies: {', '.join(sorted(TOPOLOGY_BUILDERS))}")
    print(f"kernels:    {', '.join(sorted(KERNELS))}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="python -m repro", description=__doc__)
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("figures", help="regenerate the paper's figures")
    p.add_argument("--scale", choices=("smoke", "default", "paper"), default="default")
    p.add_argument("--only", choices=("figure1", "figure2", "figure3", "figure4"))
    p.add_argument("--plot", action="store_true", help="append ASCII plots")
    p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the sweep (output is identical for any N)",
    )
    p.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result cache",
    )
    p.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache location (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro/experiments)",
    )
    p.set_defaults(fn=_cmd_figures)

    from repro.core import SCHEDULERS

    p = sub.add_parser("schedule", help="schedule a generated workload")
    p.add_argument("--algorithm", choices=sorted(SCHEDULERS), default="oihsa")
    p.add_argument("--tasks", type=int, default=30, help="random layered DAG size")
    p.add_argument("--kernel", default=None, help="use a named kernel instead")
    p.add_argument("--size", type=int, default=5, help="kernel size parameter")
    p.add_argument("--ccr", type=float, default=None)
    p.add_argument("--topology", default="random_wan")
    p.add_argument("--procs", type=int, default=8)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--no-gantt", action="store_true")
    p.add_argument(
        "--stats", action="store_true",
        help="enable observability; report decision counters and phase timings",
    )
    p.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="stream the decision-event log as JSONL (implies --stats)",
    )
    p.add_argument(
        "--no-incremental", action="store_true",
        help="evaluate every mapping-search candidate with a full "
        "re-simulation instead of the incremental prefix-reusing evaluator "
        "(annealing/genetic only; results are bit-identical either way)",
    )
    p.set_defaults(fn=_cmd_schedule)

    p = sub.add_parser(
        "profile",
        help="time each scheduler on a common workload, print phase breakdown",
    )
    p.add_argument("--scale", choices=sorted(_PROFILE_SCALES), default="default")
    p.add_argument(
        "--algorithms", nargs="+", default=["ba", "oihsa", "bbsa", "classic"],
        metavar="ALGO", help="schedulers to profile (default: the paper's)",
    )
    p.add_argument("--ccr", type=float, default=2.0)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--repeat", type=int, default=1, help="runs to average over")
    p.set_defaults(fn=_cmd_profile)

    p = sub.add_parser("ablation", help="run a design-choice ablation")
    p.add_argument("name", nargs="?", default=None)
    p.add_argument("--ccr", type=float, default=2.0)
    p.add_argument("--procs", type=int, default=16)
    p.set_defaults(fn=_cmd_ablation)

    p = sub.add_parser("export", help="schedule a workload and export it")
    p.add_argument("output", help="output file path")
    p.add_argument("--format", choices=("svg", "trace", "json"), default="svg")
    p.add_argument("--algorithm", choices=sorted(SCHEDULERS), default="oihsa")
    p.add_argument("--tasks", type=int, default=30)
    p.add_argument("--ccr", type=float, default=None)
    p.add_argument("--topology", default="random_wan")
    p.add_argument("--procs", type=int, default=8)
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(fn=_cmd_export)

    p = sub.add_parser("lint", help="run the repo's static-analysis rules")
    from repro.analysis.cli import add_arguments as add_lint_arguments

    add_lint_arguments(p)
    p.set_defaults(fn=_cmd_lint)

    p = sub.add_parser("info", help="library overview")
    p.set_defaults(fn=_cmd_info)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), 1)
        return 0


if __name__ == "__main__":
    sys.exit(main())
