"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``figures``  — regenerate the paper's figures (choose scale / subset;
  ``--jobs N`` fans the sweep over a process pool with identical output,
  ``--cache-dir`` / ``--no-cache`` control the on-disk result cache),
- ``schedule`` — schedule a generated workload and print report + Gantt
  (``--stats`` adds decision counters and phase timings, ``--trace-out``
  streams the decision-event log as JSONL),
- ``profile``  — time each scheduler on a common workload and print the
  per-phase cost breakdown (routing / insertion / processor selection),
- ``ablation`` — run one of the named design-choice ablations,
- ``export``   — schedule a workload and write SVG / Chrome-trace / JSON,
- ``explain``  — schedule a workload and attribute its makespan: walk the
  binding chain backwards from the finish and break the critical path into
  compute / transfer / contention-wait / idle segments per resource,
- ``runs``     — query the run ledger (``list`` / ``show`` / ``diff`` /
  ``compare --baseline BENCH_*.json``); every ``schedule`` / ``figures`` /
  bench invocation appends a record under ``.repro-runs/``,
- ``topo``     — datacenter fabric generators (``build`` / ``info`` /
  ``validate``): emit a fat-tree / leaf-spine / torus topology as JSON,
  describe its closed-form structure, or check every structural invariant
  plus route identity against the flat reference search,
- ``lint``     — run the repo-specific static-analysis rules (determinism,
  float discipline, obs guards, transaction safety; see
  ``docs/static_analysis.md``),
- ``info``     — library, algorithm and registry overview.
"""

from __future__ import annotations

import argparse
import sys

from repro import __version__


def _cmd_figures(args: argparse.Namespace) -> int:
    from time import perf_counter

    from repro.experiments import ALL_FIGURES, ExperimentConfig, ResultCache
    from repro.experiments.cache import default_cache_dir

    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    cache = None
    if not args.no_cache:
        cache_dir = args.cache_dir if args.cache_dir else default_cache_dir()
        cache = ResultCache(cache_dir)
    names = [args.only] if args.only else sorted(ALL_FIGURES)
    for name in names:
        hetero = name in ("figure3", "figure4")
        if args.scale == "paper":
            config = ExperimentConfig.paper_scale(heterogeneous=hetero)
        elif args.scale == "smoke":
            config = ExperimentConfig.smoke(heterogeneous=hetero)
        else:
            config = ExperimentConfig.default(heterogeneous=hetero)
        config = config.with_(topology=args.topology)
        t0 = perf_counter()
        fig = ALL_FIGURES[name](config, jobs=args.jobs, cache=cache)
        wall = perf_counter() - t0
        print(fig.to_text(plot=args.plot))
        print()
        if not args.no_runlog:
            from repro.experiments.cache import config_fingerprint
            from repro.obs import runlog

            telemetry = getattr(fig, "telemetry", None)
            record = runlog.new_record(
                "sweep",
                config_fingerprint=config_fingerprint(config),
                argv=getattr(args, "_argv", []),
                wall_s=wall,
                meta={
                    "figure": name,
                    "scale": args.scale,
                    "jobs": args.jobs,
                    "topology": args.topology,
                    **(
                        {"telemetry": telemetry.summary_dict()}
                        if telemetry is not None
                        else {}
                    ),
                },
            )
            runlog.append(record, args.runs_dir)
            # Stderr so stdout stays byte-identical for any ledger/cache state.
            print(f"[ledger] {name}: run {record.run_id}", file=sys.stderr)
            if telemetry is not None:
                print(telemetry.to_text(prefix=f"[sweep] {name}: "), file=sys.stderr)
    if cache is not None:
        print(f"[cache] {cache.root}: {cache.stats.to_text()}", file=sys.stderr)
    return 0


def _workload_from_args(args: argparse.Namespace):
    """Build the (graph, net) pair the ``schedule``/``explain`` flags describe."""
    from repro.network.builders import TOPOLOGY_BUILDERS
    from repro.taskgraph.ccr import scale_to_ccr
    from repro.taskgraph.generators import random_layered_dag
    from repro.taskgraph.kernels import KERNELS

    if getattr(args, "kernel", None):
        graph = KERNELS[args.kernel](args.size, rng=args.seed)
    else:
        graph = random_layered_dag(args.tasks, rng=args.seed)
    if args.ccr is not None:
        graph = scale_to_ccr(graph, args.ccr)
    builder = TOPOLOGY_BUILDERS[args.topology]
    if args.topology == "mesh2d":
        net = builder(args.procs, args.procs, rng=args.seed + 1)
    else:
        net = builder(args.procs, rng=args.seed + 1)
    return graph, net


def _workload_fingerprint_doc(args: argparse.Namespace, command: str) -> dict:
    """The ledger fingerprint of a CLI-described workload + algorithm."""
    return {
        "command": command,
        "algorithm": args.algorithm,
        "tasks": args.tasks,
        "kernel": getattr(args, "kernel", None),
        "size": getattr(args, "size", None),
        "ccr": args.ccr,
        "topology": args.topology,
        "procs": args.procs,
        "seed": args.seed,
    }


def _cmd_schedule(args: argparse.Namespace) -> int:
    from time import perf_counter

    from repro import obs
    from repro.core import SCHEDULERS
    from repro.core.validate import validate_schedule
    from repro.viz.report import schedule_report

    graph, net = _workload_from_args(args)
    want_stats = args.stats or args.trace_out is not None
    # The ledger wants the run's counters even when the user didn't ask for
    # --stats, so observability is on unless the ledger is off too.
    observing = want_stats or not args.no_runlog
    if observing:
        sink = obs.JsonlSink(args.trace_out) if args.trace_out else obs.ListSink()
        obs.enable(sink)
    kwargs = {}
    is_search = args.algorithm in ("annealing", "genetic")
    if args.no_incremental:
        if not is_search:
            print("--no-incremental only applies to the mapping-search "
                  "schedulers (annealing, genetic)")
            return 2
        kwargs["incremental"] = False
    if args.backend is not None:
        if not is_search:
            print("--backend only applies to the mapping-search "
                  "schedulers (annealing, genetic)")
            return 2
        if args.no_incremental:
            print("--no-incremental runs the full re-simulation path; "
                  "--backend does not apply")
            return 2
        kwargs["backend"] = args.backend
    if args.eval_kernel is not None:
        if not is_search:
            print("--eval-kernel only applies to the mapping-search "
                  "schedulers (annealing, genetic)")
            return 2
        if args.no_incremental or args.backend == "object":
            print("--eval-kernel selects the array backend's hot loop; "
                  "it does not apply to the object/full evaluation paths")
            return 2
        kwargs["kernel"] = args.eval_kernel
    # What actually scores candidates, for --stats / the run ledger.
    backend_used = None
    kernel_used = None
    if is_search:
        backend_used = (
            "full" if args.no_incremental else (args.backend or "array")
        )
        if backend_used == "array":
            from repro.core.kernelreg import active_kernel

            kernel_used = active_kernel(args.eval_kernel or "auto")
    t0 = perf_counter()
    try:
        schedule = SCHEDULERS[args.algorithm](**kwargs).schedule(graph, net)
    finally:
        if observing:
            obs.disable()
    wall = perf_counter() - t0
    validate_schedule(schedule)
    stats = schedule.stats
    if not want_stats:
        # Ledger-only instrumentation: keep stdout identical to a plain run.
        schedule.stats = None
    print(schedule_report(schedule, gantt=not args.no_gantt))
    if want_stats and backend_used is not None:
        line = f"evaluation backend: {backend_used}"
        if kernel_used is not None:
            line += f", kernel: {kernel_used}"
        if stats is not None:
            batches = stats.counter("mapping.batch_evaluations")
            if batches:
                mean = stats.counter("mapping.batch_candidates") / batches
                line += f" (batches: {int(batches)}, mean batch size: {mean:.1f})"
        print(line)
    if args.trace_out:
        print(f"\nwrote decision-event log to {args.trace_out}")
    if not args.no_runlog:
        from repro.obs import runlog

        record = runlog.new_record(
            "schedule",
            fingerprint_doc={
                **_workload_fingerprint_doc(args, "schedule"),
                "incremental": not args.no_incremental,
                "backend": backend_used,
                "eval_kernel": kernel_used,
            },
            argv=getattr(args, "_argv", []),
            makespans={args.algorithm: schedule.makespan},
            metrics=stats.metrics if stats is not None else {},
            timings=stats.timings if stats is not None else {},
            wall_s=wall,
            meta={"n_tasks": len(schedule.placements), "n_procs": args.procs},
        )
        runlog.append(record, args.runs_dir)
        print(f"[ledger] run {record.run_id}", file=sys.stderr)
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from time import perf_counter

    from repro import obs
    from repro.core import SCHEDULERS
    from repro.core.explain import explain
    from repro.core.validate import validate_schedule
    from repro.viz.report import explain_report

    graph, net = _workload_from_args(args)
    observing = not args.no_runlog
    if observing:
        obs.enable(obs.ListSink())
    t0 = perf_counter()
    try:
        schedule = SCHEDULERS[args.algorithm]().schedule(graph, net)
    finally:
        if observing:
            obs.disable()
    wall = perf_counter() - t0
    validate_schedule(schedule)
    explanation = explain(schedule)
    if args.json:
        import json

        print(json.dumps(explanation.to_dict(), indent=1, sort_keys=True))
    else:
        print(explain_report(explanation, chain=not args.no_chain))
    if args.trace_out:
        from repro.viz.trace import schedule_to_trace

        with open(args.trace_out, "w") as fh:
            fh.write(schedule_to_trace(schedule, explanation=explanation))
        print(f"\nwrote Perfetto trace with critical-path track to "
              f"{args.trace_out}")
    if not args.no_runlog:
        from repro.obs import runlog

        stats = schedule.stats
        record = runlog.new_record(
            "schedule",
            fingerprint_doc=_workload_fingerprint_doc(args, "explain"),
            argv=getattr(args, "_argv", []),
            makespans={args.algorithm: schedule.makespan},
            metrics=stats.metrics if stats is not None else {},
            timings=stats.timings if stats is not None else {},
            wall_s=wall,
            meta={
                "command": "explain",
                "by_category": explanation.by_category(),
                "binding_resources": explanation.binding_resources()[:5],
            },
        )
        runlog.append(record, args.runs_dir)
        print(f"[ledger] run {record.run_id}", file=sys.stderr)
    return 0


def _cmd_runs_list(args: argparse.Namespace) -> int:
    from repro.obs.runlog import RunLedger
    from repro.utils.tables import format_table

    ledger = RunLedger(args.runs_dir)
    records = ledger.records(kind=args.kind)
    if args.last:
        records = records[-args.last:]
    if not records:
        print(f"(no runs recorded under {ledger.root})")
        return 0
    rows = []
    for r in records:
        makespans = ", ".join(
            f"{algo}={r.makespans[algo]:g}" for algo in sorted(r.makespans)[:3]
        )
        if len(r.makespans) > 3:
            makespans += f", +{len(r.makespans) - 3} more"
        rows.append(
            [r.run_id, r.kind, r.created_at[:19], makespans or "-",
             r.fingerprint[:12]]
        )
    print(format_table(["run", "kind", "created (UTC)", "makespans", "config"], rows))
    return 0


def _cmd_runs_show(args: argparse.Namespace) -> int:
    from repro.exceptions import ObsError
    from repro.obs.runlog import RunLedger

    try:
        record = RunLedger(args.runs_dir).get(args.run_id)
    except ObsError as exc:
        print(exc, file=sys.stderr)
        return 1
    print(record.to_text())
    return 0


def _cmd_runs_diff(args: argparse.Namespace) -> int:
    from repro.exceptions import ObsError
    from repro.obs.runlog import RunLedger
    from repro.utils.tables import format_table

    ledger = RunLedger(args.runs_dir)
    try:
        a, b = ledger.get(args.a), ledger.get(args.b)
    except ObsError as exc:
        print(exc, file=sys.stderr)
        return 1
    print(f"a: run {a.run_id}  [{a.kind}]  {a.created_at}")
    print(f"b: run {b.run_id}  [{b.kind}]  {b.created_at}")
    if a.fingerprint != b.fingerprint:
        print("note: configs differ (fingerprints "
              f"{a.fingerprint[:12]} vs {b.fingerprint[:12]})")
    print()
    rows = []
    for algo in sorted(set(a.makespans) | set(b.makespans)):
        ma, mb = a.makespans.get(algo), b.makespans.get(algo)
        delta = f"{mb - ma:+g}" if ma is not None and mb is not None else "-"
        rows.append([f"makespan[{algo}]",
                     f"{ma:g}" if ma is not None else "-",
                     f"{mb:g}" if mb is not None else "-", delta])
    counters_a = a.metrics.get("counters", {})
    counters_b = b.metrics.get("counters", {})
    for name in sorted(set(counters_a) | set(counters_b)):
        va, vb = counters_a.get(name, 0.0), counters_b.get(name, 0.0)
        if va != vb or args.all:
            rows.append([name, f"{va:g}", f"{vb:g}", f"{vb - va:+g}"])
    for phase in sorted(set(a.timings) | set(b.timings)):
        ta = a.timings.get(phase, {}).get("total", 0.0)
        tb = b.timings.get(phase, {}).get("total", 0.0)
        rows.append([f"{phase} (ms)", f"{ta * 1e3:.3f}", f"{tb * 1e3:.3f}",
                     f"{(tb - ta) * 1e3:+.3f}"])
    if a.wall_s is not None and b.wall_s is not None:
        rows.append(["wall (ms)", f"{a.wall_s * 1e3:.1f}",
                     f"{b.wall_s * 1e3:.1f}",
                     f"{(b.wall_s - a.wall_s) * 1e3:+.1f}"])
    if not rows:
        print("(no comparable quantities)")
        return 0
    print(format_table(["quantity", "a", "b", "delta"], rows))
    return 0


def _fresh_bench_record(baseline: dict):
    """Re-run the scheduler-cost bench workload and build a ledger record.

    Replicates ``benchmarks/bench_scheduler_cost.py``'s instrumented pass
    (NullSink + reset + full counter snapshot) on the shared
    :func:`~repro.experiments.workloads.scheduler_cost_workload`, so the
    record's counters are directly comparable to the committed baseline.
    """
    from time import perf_counter

    from repro import obs
    from repro.core import SCHEDULERS
    from repro.experiments.workloads import (
        SCHEDULER_COST_PARAMS,
        scheduler_cost_workload,
    )
    from repro.obs import runlog

    algorithms = sorted(set(baseline.get("algorithms", {})) & set(SCHEDULERS))
    makespans: dict[str, float] = {}
    counters: dict[str, dict] = {}
    walls: dict[str, float] = {}
    for algo in algorithms:
        # Fresh instance per algorithm, matching the bench: route tables live
        # on the topology, so sharing one would warm later algorithms' caches.
        workload = scheduler_cost_workload()
        obs.enable(obs.NullSink())
        obs.reset()
        try:
            t0 = perf_counter()
            schedule = SCHEDULERS[algo]().schedule(workload.graph, workload.net)
            walls[algo] = perf_counter() - t0
            counters[algo] = obs.METRICS.snapshot()["counters"]
        finally:
            obs.disable()
        makespans[algo] = schedule.makespan
    return runlog.new_record(
        "bench",
        fingerprint_doc={
            "bench": "scheduler_cost",
            "params": SCHEDULER_COST_PARAMS,
            "algorithms": algorithms,
        },
        makespans=makespans,
        meta={"counters": counters, "wall_s": walls},
    )


def _cmd_runs_compare(args: argparse.Namespace) -> int:
    import json

    from repro.obs import runlog
    from repro.obs.runlog import RunLedger, compare_to_baseline

    with open(args.baseline) as fh:
        baseline = json.load(fh)
    ledger = RunLedger(args.runs_dir)
    record = None if args.fresh else ledger.latest(kind="bench")
    if record is None:
        print(f"no bench record in {ledger.root}; running the bench workload "
              "fresh", file=sys.stderr)
        record = _fresh_bench_record(baseline)
        runlog.append(record, args.runs_dir)
    findings = compare_to_baseline(
        record,
        baseline,
        rel_tol=args.rel_tol,
        counter_tol=args.counter_tol,
        wall_tol=args.wall_tol,
    )
    print(f"comparing run {record.run_id} ({record.created_at}) against "
          f"{args.baseline}")
    if not findings:
        checked = len(baseline.get("algorithms", {}))
        print(f"OK: {checked} algorithms within tolerance "
              f"(makespan rel tol {args.rel_tol:g}, counter rel tol "
              f"{args.counter_tol:g})")
        return 0
    for f in findings:
        print(f"REGRESSION: {f.message}")
    print(f"{len(findings)} regression(s) found")
    return 1


def _fabric_from_args(args: argparse.Namespace):
    """Build the fabric topology the ``topo`` flags describe.

    Structure flags (``--k`` / ``--leaves`` / ``--dims`` ...) pin the exact
    instance; with only ``--procs`` the canonical instance for that
    processor count is sized automatically (``fabric_for_procs``).
    """
    from repro.network.fabrics import (
        fabric_for_procs,
        kary_fat_tree,
        leaf_spine,
        torus_fabric,
    )

    kind = args.kind
    if kind == "fat_tree":
        if args.k is None:
            return fabric_for_procs("fat_tree", args.procs or 16)
        return kary_fat_tree(
            args.k, hosts_per_edge=args.hosts_per_edge, n_procs=args.procs
        )
    if kind == "leaf_spine":
        if args.leaves is None and args.spines is None:
            return fabric_for_procs("leaf_spine", args.procs or 16)
        return leaf_spine(
            args.leaves or 4,
            args.spines or 2,
            args.hosts_per_leaf,
            n_procs=args.procs,
        )
    if args.dims is None:
        return fabric_for_procs("torus", args.procs or 16)
    return torus_fabric(
        tuple(args.dims), hosts_per_node=args.hosts_per_node, n_procs=args.procs
    )


def _cmd_topo_build(args: argparse.Namespace) -> int:
    from repro.exceptions import TopologyError
    from repro.network.fabrics import fabric_plan
    from repro.network.io import topology_to_json

    try:
        net = _fabric_from_args(args)
    except TopologyError as exc:
        print(exc, file=sys.stderr)
        return 2
    doc = topology_to_json(net)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(doc + "\n")
        plan = fabric_plan(net)
        counts = plan.expected_counts() if plan is not None else None
        print(
            f"wrote {net.name}: {counts.processors} processors, "
            f"{counts.switches} switches, {counts.cables} cables "
            f"to {args.output}"
            if counts is not None
            else f"wrote {net.name} to {args.output}"
        )
    else:
        print(doc)
    return 0


def _cmd_topo_info(args: argparse.Namespace) -> int:
    from repro.exceptions import TopologyError
    from repro.network.fabrics import fabric_plan

    try:
        net = _fabric_from_args(args)
    except TopologyError as exc:
        print(exc, file=sys.stderr)
        return 2
    plan = fabric_plan(net)
    assert plan is not None  # every fabric builder attaches its plan
    counts = plan.expected_counts()
    params = ", ".join(
        f"{key}={value}"
        for key, value in plan.describe().items()
        if key not in ("kind", "hosts")
    )
    print(f"fabric:     {plan.kind} ({params})")
    print(f"name:       {net.name}")
    print(f"processors: {counts.processors}")
    print(f"switches:   {counts.switches}")
    print(f"cables:     {counts.cables} (full duplex: {2 * counts.cables} links)")
    print(f"diameter:   <= {counts.diameter} hops processor-to-processor")
    print(f"ecmp width: up to {counts.ecmp_width} equal-cost paths")
    print("routing:    hierarchical (per-shard lazy tables, "
          "bit-identical to flat BFS)")
    return 0


def _cmd_topo_validate(args: argparse.Namespace) -> int:
    from repro.exceptions import RoutingError, TopologyError
    from repro.network.fabrics import validate_fabric
    from repro.network.io import topology_to_json
    from repro.network.routing import bfs_route, equal_cost_routes

    try:
        net = _fabric_from_args(args)
        validate_fabric(net)
    except TopologyError as exc:
        print(f"FAIL: {exc}")
        return 1
    # Differential check: the attached hierarchical router must reproduce
    # the flat reference search on a deterministic sample of processor
    # pairs (all pairs on small fabrics).
    flat = _fabric_from_args(args)
    flat.detach_router()
    procs = [p.vid for p in net.processors()]
    pairs = [(s, d) for s in procs for d in procs if s != d]
    step = max(1, len(pairs) // args.sample)
    checked = 0
    try:
        for s, d in pairs[::step]:
            hier = [l.lid for l in bfs_route(net, s, d)]
            ref = [l.lid for l in bfs_route(flat, s, d)]
            if hier != ref:
                print(f"FAIL: route {s}->{d} differs: {hier} vs flat {ref}")
                return 1
            ecmp = equal_cost_routes(flat, s, d, max_paths=64)
            if any(len(r) != len(hier) for r in ecmp):
                print(f"FAIL: ECMP set {s}->{d} is not equal-cost")
                return 1
            checked += 1
    except RoutingError as exc:
        print(f"FAIL: {exc}")
        return 1
    if args.file:
        with open(args.file) as fh:
            if fh.read().rstrip("\n") != topology_to_json(net):
                print(f"FAIL: {args.file} differs from a fresh "
                      f"{net.name} build")
                return 1
    print(f"OK: {net.name} valid; {checked} sampled routes identical to "
          "flat BFS, ECMP sets equal-cost"
          + (f"; {args.file} matches" if args.file else ""))
    return 0


#: workload sizes for ``profile`` (tasks, processors)
_PROFILE_SCALES = {"smoke": (24, 8), "default": (80, 16)}


def _cmd_profile(args: argparse.Namespace) -> int:
    from time import perf_counter

    from repro import obs
    from repro.core import SCHEDULERS
    from repro.network.builders import random_wan
    from repro.taskgraph.ccr import scale_to_ccr
    from repro.taskgraph.generators import random_layered_dag
    from repro.utils.tables import format_table

    for name in args.algorithms:
        if name not in SCHEDULERS:
            print(f"unknown algorithm {name!r}; known: {sorted(SCHEDULERS)}")
            return 2
    n_tasks, n_procs = _PROFILE_SCALES[args.scale]
    graph = scale_to_ccr(random_layered_dag(n_tasks, rng=args.seed), args.ccr)
    net = random_wan(n_procs, rng=args.seed + 1)
    phases = ("routing", "insertion", "processor_selection", "task_placement")
    rows = []
    for name in args.algorithms:
        scheduler = SCHEDULERS[name]()
        # The mapping searches score candidates through a pluggable
        # evaluation backend; report it (and the active array-kernel
        # implementation) so profile rows are attributable.
        backend = getattr(scheduler, "backend", None) or "-"
        kwargs = {}
        if backend == "array":
            from repro.core.kernelreg import active_kernel

            kwargs["kernel"] = args.eval_kernel
            backend += f"/{active_kernel(args.eval_kernel)}"
        obs.enable(obs.NullSink())
        obs.reset()
        t0 = perf_counter()
        try:
            for _ in range(args.repeat):
                schedule = SCHEDULERS[name](**kwargs).schedule(graph, net)
            wall = perf_counter() - t0
            stats = schedule.stats
        finally:
            obs.disable()
        timed = {p: stats.timings.get(p, {"total": 0.0})["total"] for p in phases}
        other = wall / args.repeat - sum(timed.values())
        batches = stats.counter("mapping.batch_evaluations")
        if batches:
            mean = stats.counter("mapping.batch_candidates") / batches
            backend += f" (batch {mean:.0f})"
        rows.append(
            [name, backend, f"{wall / args.repeat * 1e3:.2f}"]
            + [f"{timed[p] * 1e3:.2f}" for p in phases]
            + [f"{max(0.0, other) * 1e3:.2f}"]
        )
    print(
        f"workload: {n_tasks} tasks (CCR {args.ccr:g}) on {n_procs}-processor "
        f"random WAN, seed {args.seed}; times per schedule() call"
        + (f", wall averaged over {args.repeat} runs" if args.repeat > 1 else "")
    )
    print()
    print(
        format_table(
            ["algorithm", "backend", "wall ms", "routing", "insertion",
             "proc-select", "task-place", "other"],
            rows,
        )
    )
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    from repro.experiments.ablations import ABLATIONS, run_ablation
    from repro.experiments.config import ExperimentConfig

    names = [args.name] if args.name else sorted(ABLATIONS)
    config = ExperimentConfig.default()
    for name in names:
        result = run_ablation(name, config, ccr=args.ccr, n_procs=args.procs)
        print(f"{name} (base: {result.base}):")
        for variant, imp in result.improvements.items():
            print(f"  {variant}: {imp:+.1f}% makespan vs base")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.core import SCHEDULERS
    from repro.core.io import schedule_to_json
    from repro.core.validate import validate_schedule
    from repro.network.builders import TOPOLOGY_BUILDERS
    from repro.taskgraph.ccr import scale_to_ccr
    from repro.taskgraph.generators import random_layered_dag
    from repro.viz.svg import schedule_to_svg
    from repro.viz.trace import schedule_to_trace

    graph = random_layered_dag(args.tasks, rng=args.seed)
    if args.ccr is not None:
        graph = scale_to_ccr(graph, args.ccr)
    net = TOPOLOGY_BUILDERS[args.topology](args.procs, rng=args.seed + 1)
    schedule = SCHEDULERS[args.algorithm]().schedule(graph, net)
    validate_schedule(schedule)
    renderers = {
        "svg": schedule_to_svg,
        "trace": schedule_to_trace,
        "json": schedule_to_json,
    }
    content = renderers[args.format](schedule)
    with open(args.output, "w") as fh:
        fh.write(content)
    print(f"wrote {args.format} for {schedule.summary()} to {args.output}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import run

    return run(args)


def _cmd_info(args: argparse.Namespace) -> int:  # noqa: ARG001
    from repro.core import SCHEDULERS
    from repro.network.builders import TOPOLOGY_BUILDERS
    from repro.taskgraph.kernels import KERNELS

    print(f"repro {__version__} — contention-aware edge scheduling (Han & Wang, ICPP 2006)")
    print(f"algorithms: {', '.join(sorted(SCHEDULERS))}")
    print(f"topologies: {', '.join(sorted(TOPOLOGY_BUILDERS))}")
    print(f"kernels:    {', '.join(sorted(KERNELS))}")
    return 0


def _add_runlog_arguments(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--runs-dir", default=None, metavar="DIR",
        help="run ledger location (default: $REPRO_RUNS_DIR or .repro-runs)",
    )
    p.add_argument(
        "--no-runlog", action="store_true",
        help="do not append this run to the run ledger",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="python -m repro", description=__doc__)
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("figures", help="regenerate the paper's figures")
    p.add_argument("--scale", choices=("smoke", "default", "paper"), default="default")
    p.add_argument("--only", choices=("figure1", "figure2", "figure3", "figure4"))
    p.add_argument("--plot", action="store_true", help="append ASCII plots")
    p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the sweep (output is identical for any N)",
    )
    p.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result cache",
    )
    from repro.experiments.config import SWEEP_TOPOLOGIES

    p.add_argument(
        "--topology", choices=SWEEP_TOPOLOGIES, default="random_wan",
        help="network family for the sweep points (datacenter fabrics are "
        "sized per processor count)",
    )
    p.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache location (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro/experiments)",
    )
    _add_runlog_arguments(p)
    p.set_defaults(fn=_cmd_figures)

    from repro.core import SCHEDULERS

    p = sub.add_parser("schedule", help="schedule a generated workload")
    p.add_argument("--algorithm", choices=sorted(SCHEDULERS), default="oihsa")
    p.add_argument("--tasks", type=int, default=30, help="random layered DAG size")
    p.add_argument("--kernel", default=None, help="use a named kernel instead")
    p.add_argument("--size", type=int, default=5, help="kernel size parameter")
    p.add_argument("--ccr", type=float, default=None)
    p.add_argument("--topology", default="random_wan")
    p.add_argument("--procs", type=int, default=8)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--no-gantt", action="store_true")
    p.add_argument(
        "--stats", action="store_true",
        help="enable observability; report decision counters and phase timings",
    )
    p.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="stream the decision-event log as JSONL (implies --stats)",
    )
    p.add_argument(
        "--no-incremental", action="store_true",
        help="evaluate every mapping-search candidate with a full "
        "re-simulation instead of the incremental prefix-reusing evaluator "
        "(annealing/genetic only; results are bit-identical either way)",
    )
    p.add_argument(
        "--backend", choices=("object", "array"), default=None,
        help="candidate-evaluation backend for the mapping-search "
        "schedulers: 'array' (default) scores on flat columns and batches, "
        "'object' uses the per-slot object substrate (annealing/genetic "
        "only; results are bit-identical either way)",
    )
    p.add_argument(
        "--eval-kernel", choices=("auto", "python", "compiled"), default=None,
        help="implementation of the array backend's scoring hot loop: "
        "'auto' (default) uses the AOT-compiled extension when built, "
        "'python' forces the reference loop, 'compiled' requires the "
        "extension (annealing/genetic only; kernels are bit-identical — "
        "named --eval-kernel because --kernel selects task-graph kernels)",
    )
    _add_runlog_arguments(p)
    p.set_defaults(fn=_cmd_schedule)

    p = sub.add_parser(
        "explain",
        help="schedule a workload and attribute its makespan to resources",
    )
    p.add_argument("--algorithm", choices=sorted(SCHEDULERS), default="oihsa")
    p.add_argument("--tasks", type=int, default=30, help="random layered DAG size")
    p.add_argument("--kernel", default=None, help="use a named kernel instead")
    p.add_argument("--size", type=int, default=5, help="kernel size parameter")
    p.add_argument("--ccr", type=float, default=None)
    p.add_argument("--topology", default="random_wan")
    p.add_argument("--procs", type=int, default=8)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--json", action="store_true",
                   help="emit the attribution as JSON instead of tables")
    p.add_argument("--no-chain", action="store_true",
                   help="omit the segment-by-segment binding chain table")
    p.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write a Perfetto trace with the critical path as a "
        "highlighted track",
    )
    _add_runlog_arguments(p)
    p.set_defaults(fn=_cmd_explain)

    p = sub.add_parser(
        "runs",
        help="query the run ledger (list / show / diff / compare)",
    )
    runs_sub = p.add_subparsers(dest="runs_command", required=True)

    q = runs_sub.add_parser("list", help="list recorded runs, oldest first")
    q.add_argument("--kind", choices=("schedule", "sweep", "bench"), default=None)
    q.add_argument("-n", "--last", type=int, default=0, metavar="N",
                   help="show only the most recent N runs")
    q.add_argument("--runs-dir", default=None, metavar="DIR")
    q.set_defaults(fn=_cmd_runs_list)

    q = runs_sub.add_parser("show", help="print one run record in full")
    q.add_argument("run_id", help="run id (unambiguous prefix accepted)")
    q.add_argument("--runs-dir", default=None, metavar="DIR")
    q.set_defaults(fn=_cmd_runs_show)

    q = runs_sub.add_parser(
        "diff", help="makespan / counter / timing deltas between two runs"
    )
    q.add_argument("a", help="baseline run id (prefix accepted)")
    q.add_argument("b", help="comparison run id (prefix accepted)")
    q.add_argument("--all", action="store_true",
                   help="include counters that did not change")
    q.add_argument("--runs-dir", default=None, metavar="DIR")
    q.set_defaults(fn=_cmd_runs_diff)

    q = runs_sub.add_parser(
        "compare",
        help="regression verdict of the latest bench run against a "
        "BENCH_*.json baseline (exit 1 on regression)",
    )
    q.add_argument("--baseline", required=True, metavar="PATH",
                   help="committed BENCH_*.json report to compare against")
    q.add_argument("--fresh", action="store_true",
                   help="re-run the bench workload instead of using the "
                   "latest ledger record")
    q.add_argument("--rel-tol", type=float, default=0.0, metavar="T",
                   help="relative makespan tolerance (default 0: exact — "
                   "the engines are deterministic)")
    q.add_argument("--counter-tol", type=float, default=0.0, metavar="T",
                   help="relative decision-counter tolerance (default 0)")
    q.add_argument("--wall-tol", type=float, default=None, metavar="X",
                   help="fail when wall time exceeds X times the baseline "
                   "(default: wall time is reported, never gated)")
    q.add_argument("--runs-dir", default=None, metavar="DIR")
    q.set_defaults(fn=_cmd_runs_compare)

    p = sub.add_parser(
        "topo",
        help="datacenter fabric generators (build / info / validate)",
    )
    topo_sub = p.add_subparsers(dest="topo_command", required=True)

    def _add_fabric_arguments(q: argparse.ArgumentParser) -> None:
        q.add_argument(
            "kind", choices=("fat_tree", "leaf_spine", "torus"),
            help="fabric family",
        )
        q.add_argument("--k", type=int, default=None,
                       help="fat-tree arity (even; k pods, k^3/4 hosts)")
        q.add_argument("--hosts-per-edge", type=int, default=None,
                       help="fat-tree hosts per edge switch (default k/2)")
        q.add_argument("--leaves", type=int, default=None,
                       help="leaf-spine leaf switch count")
        q.add_argument("--spines", type=int, default=None,
                       help="leaf-spine spine switch count")
        q.add_argument("--hosts-per-leaf", type=int, default=16,
                       help="leaf-spine hosts per leaf switch")
        q.add_argument("--dims", type=int, nargs="+", default=None,
                       metavar="N", help="torus dimensions (2 or 3 values)")
        q.add_argument("--hosts-per-node", type=int, default=1,
                       help="torus hosts per grid switch")
        q.add_argument(
            "--procs", type=int, default=None,
            help="cap the host count; alone (no structure flags), size the "
            "canonical fabric for this processor count",
        )

    q = topo_sub.add_parser("build", help="emit the fabric topology as JSON")
    _add_fabric_arguments(q)
    q.add_argument("-o", "--output", default=None, metavar="PATH",
                   help="write JSON here instead of stdout")
    q.set_defaults(fn=_cmd_topo_build)

    q = topo_sub.add_parser("info", help="describe the fabric's structure")
    _add_fabric_arguments(q)
    q.set_defaults(fn=_cmd_topo_info)

    q = topo_sub.add_parser(
        "validate",
        help="check structural invariants + route identity vs flat BFS "
        "(exit 1 on any violation)",
    )
    _add_fabric_arguments(q)
    q.add_argument("--sample", type=int, default=200, metavar="N",
                   help="max processor pairs to route-check (default 200)")
    q.add_argument("--file", default=None, metavar="PATH",
                   help="also check this JSON file is byte-identical to a "
                   "fresh build")
    q.set_defaults(fn=_cmd_topo_validate)

    p = sub.add_parser(
        "profile",
        help="time each scheduler on a common workload, print phase breakdown",
    )
    p.add_argument("--scale", choices=sorted(_PROFILE_SCALES), default="default")
    p.add_argument(
        "--algorithms", nargs="+", default=["ba", "oihsa", "bbsa", "classic"],
        metavar="ALGO", help="schedulers to profile (default: the paper's)",
    )
    p.add_argument("--ccr", type=float, default=2.0)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--repeat", type=int, default=1, help="runs to average over")
    p.add_argument(
        "--eval-kernel", choices=("auto", "python", "compiled"), default="auto",
        help="array-backend scoring kernel for the mapping-search rows "
        "(bit-identical; the active kernel shows in the backend column)",
    )
    p.set_defaults(fn=_cmd_profile)

    p = sub.add_parser("ablation", help="run a design-choice ablation")
    p.add_argument("name", nargs="?", default=None)
    p.add_argument("--ccr", type=float, default=2.0)
    p.add_argument("--procs", type=int, default=16)
    p.set_defaults(fn=_cmd_ablation)

    p = sub.add_parser("export", help="schedule a workload and export it")
    p.add_argument("output", help="output file path")
    p.add_argument("--format", choices=("svg", "trace", "json"), default="svg")
    p.add_argument("--algorithm", choices=sorted(SCHEDULERS), default="oihsa")
    p.add_argument("--tasks", type=int, default=30)
    p.add_argument("--ccr", type=float, default=None)
    p.add_argument("--topology", default="random_wan")
    p.add_argument("--procs", type=int, default=8)
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(fn=_cmd_export)

    p = sub.add_parser("lint", help="run the repo's static-analysis rules")
    from repro.analysis.cli import add_arguments as add_lint_arguments

    add_lint_arguments(p)
    p.set_defaults(fn=_cmd_lint)

    p = sub.add_parser("info", help="library overview")
    p.set_defaults(fn=_cmd_info)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    # The raw argv goes into ledger records; sys.argv would show the test
    # runner's own arguments when main() is invoked programmatically.
    args._argv = list(argv) if argv is not None else sys.argv[1:]
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), 1)
        return 0


if __name__ == "__main__":
    sys.exit(main())
