"""Makespan attribution: *why* does the schedule finish when it does?

:func:`explain` walks a finished :class:`~repro.core.schedule.Schedule`
backwards from the makespan-defining task along its binding constraints —
the same walk as :func:`~repro.core.analysis.schedule_critical_chain`, but
decomposed to resource granularity — and tiles ``[0, makespan]`` with
:class:`ChainSegment` s:

=============  ================================================================
``compute``    a task executing on its processor
``transfer``   an edge's data occupying a link (or a same-processor handoff)
``link_wait``  data ready to enter a link but queued behind other transfers
               (contention — the quantity the paper's algorithms minimize)
``proc_wait``  a task ready to run but its processor's insertion slot opened
               later (end-technique queueing)
``idle``       a processor idle before its first chain task (ramp-up)
=============  ================================================================

Segment boundaries are *shared floats* — each segment ends exactly where the
next begins — so durations telescope and the attribution sums to 100% of the
makespan bit-exactly, for every scheduler and workload.  Each segment names
the resource it binds (``P<vid>`` or ``L<lid>``), which makes the explanation
actionable: speeding up a binding resource must move the makespan, while a
resource absent from every segment cannot (the property
``tests/test_core_explain.py`` perturbs topologies to verify).

:func:`utilization_timelines` complements the chain with per-processor and
per-link busy-interval timelines over the whole schedule (not just the
binding path), rendered by ``repro.viz.report.explain_report`` and exported
as a highlighted track by ``repro.viz.trace``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.schedule import Schedule
from repro.exceptions import SchedulingError
from repro.types import EPS, EdgeKey, TaskId

#: The closed set of segment kinds (order = render order in reports).
SEGMENT_KINDS = ("compute", "transfer", "link_wait", "proc_wait", "idle")

#: Tolerance for "this arrival/finish binds that start" boundary matches —
#: the same tolerance the critical-chain walk in ``core.analysis`` uses.
_BIND_TOL = 1e-6


@dataclass(frozen=True, slots=True)
class ChainSegment:
    """One tile of the makespan: what the schedule was waiting on then."""

    kind: str
    start: float
    finish: float
    resource: str  # "P<vid>", "L<lid>", or "" when no single resource binds
    task: TaskId | None = None
    edge: EdgeKey | None = None

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass(frozen=True, slots=True)
class ResourceTimeline:
    """Merged busy intervals of one resource over the whole schedule."""

    resource: str
    busy: tuple[tuple[float, float], ...]

    @property
    def busy_time(self) -> float:
        return sum(f - s for s, f in self.busy)

    def utilization(self, makespan: float) -> float:
        return self.busy_time / makespan if makespan > 0 else 0.0


@dataclass(frozen=True)
class ScheduleExplanation:
    """The makespan attribution of one schedule (result of :func:`explain`)."""

    algorithm: str
    makespan: float
    segments: tuple[ChainSegment, ...]
    timelines: tuple[ResourceTimeline, ...]

    def by_category(self) -> dict[str, float]:
        """Total time per segment kind (only kinds that occurred)."""
        out: dict[str, float] = {}
        for seg in self.segments:
            out[seg.kind] = out.get(seg.kind, 0.0) + seg.duration
        return out

    def by_resource(self) -> dict[str, float]:
        """Total binding time per resource, largest share first."""
        acc: dict[str, float] = {}
        for seg in self.segments:
            key = seg.resource or "(unattributed)"
            acc[key] = acc.get(key, 0.0) + seg.duration
        return dict(sorted(acc.items(), key=lambda kv: (-kv[1], kv[0])))

    def binding_resources(self) -> list[str]:
        """Resources on the critical path, largest attributed share first."""
        return [r for r in self.by_resource() if r != "(unattributed)"]

    def attributed_total(self) -> float:
        """Sum of all segment durations.

        Equals :attr:`makespan` bit-exactly: segments share boundary floats,
        so the sum telescopes to ``last.finish - first.start``.
        """
        return sum(seg.duration for seg in self.segments)

    def timeline(self, resource: str) -> ResourceTimeline | None:
        for tl in self.timelines:
            if tl.resource == resource:
                return tl
        return None

    def to_dict(self) -> dict:
        """JSON-ready form (CLI ``explain --json``)."""
        return {
            "algorithm": self.algorithm,
            "makespan": self.makespan,
            "segments": [
                {
                    "kind": s.kind,
                    "start": s.start,
                    "finish": s.finish,
                    "resource": s.resource,
                    "task": s.task,
                    "edge": list(s.edge) if s.edge is not None else None,
                }
                for s in self.segments
            ],
            "by_category": self.by_category(),
            "by_resource": self.by_resource(),
            "utilization": {
                tl.resource: {
                    "busy": tl.busy_time,
                    "utilization": tl.utilization(self.makespan),
                }
                for tl in self.timelines
            },
        }


# -- hop occupancy ------------------------------------------------------------


def _hop_intervals(
    schedule: Schedule, edge: EdgeKey
) -> list[tuple[int, float, float]] | None:
    """Per-hop ``(lid, start, finish)`` link occupancy of one routed edge.

    ``None`` when the schedule carries no link bookings for the edge (the
    contention-free classic scheduler, or a same-processor edge).
    """
    ls = schedule.link_state
    if ls is not None and ls.has_route(edge):
        out = []
        for lid in ls.route_of(edge):
            if ls.has_slot(edge, lid):
                slot = ls.slot_of(edge, lid)
                out.append((lid, slot.start, slot.finish))
        return out or None
    bs = schedule.bandwidth_state
    if bs is not None and bs.has_route(edge):
        by_lid = {b.lid: b for b in bs.bookings_of(edge)}
        out = []
        for lid in bs.route_of(edge):
            booking = by_lid.get(lid)
            if booking is None or not booking.usage:
                continue
            out.append(
                (
                    lid,
                    min(seg.start for seg in booking.usage),
                    max(seg.finish for seg in booking.usage),
                )
            )
        return out or None
    ps = schedule.packet_state
    if ps is not None and ps.has_route(edge):
        out = []
        for lid in ps.route_of(edge):
            slots = ps.slots_of(edge, lid)
            if not slots:
                continue
            out.append(
                (
                    lid,
                    min(s.start for s in slots),
                    max(s.finish for s in slots),
                )
            )
        return out or None
    return None


def _comm_segments(
    schedule: Schedule, edge: EdgeKey, t_from: float, b: float
) -> list[ChainSegment]:
    """Tile the comm interval ``[t_from, b]`` of one binding edge, backwards.

    Walks the route's hops last-to-first: each hop contributes a ``transfer``
    segment down to its occupancy start, and any remaining gap back to the
    previous hop's exit (or the source task's finish for the first hop) is
    ``link_wait`` — contention on that hop's link.  Returned newest-first,
    like the caller's backward walk.
    """
    segments: list[ChainSegment] = []
    hops = _hop_intervals(schedule, edge)
    if not hops:
        if b > t_from:
            segments.append(
                ChainSegment("transfer", t_from, b, "", edge=edge)
            )
        return segments
    for i in range(len(hops) - 1, -1, -1):
        lid, hop_start, _hop_finish = hops[i]
        s = min(hop_start, b)
        if b > s:
            segments.append(
                ChainSegment("transfer", s, b, f"L{lid}", edge=edge)
            )
            b = s
        entry = hops[i - 1][2] if i > 0 else t_from
        entry = min(entry, b)
        if b > entry:
            segments.append(
                ChainSegment("link_wait", entry, b, f"L{lid}", edge=edge)
            )
            b = entry
    return segments


# -- the walk ------------------------------------------------------------------


def explain(schedule: Schedule) -> ScheduleExplanation:
    """Attribute every instant of the makespan to a binding resource."""
    placements = schedule.placements
    timelines = utilization_timelines(schedule)
    if not placements:
        return ScheduleExplanation(schedule.algorithm, 0.0, (), tuple(timelines))

    by_proc: dict[int, list] = {}
    for pl in placements.values():
        by_proc.setdefault(pl.processor, []).append(pl)
    for pls in by_proc.values():
        pls.sort(key=lambda p: p.start)

    segments: list[ChainSegment] = []  # built newest-first
    current = max(placements.values(), key=lambda p: (p.finish, p.task))
    b = current.finish  # == makespan
    makespan = b
    guard = 0
    while True:
        guard += 1
        if guard > len(placements) * 4:
            raise SchedulingError("explain walk failed to terminate")
        s = min(current.start, b)
        if b > s:
            segments.append(
                ChainSegment(
                    "compute", s, b, f"P{current.processor}", task=current.task
                )
            )
            b = s
        if b <= EPS:
            break
        # Data-bound: an in-edge arrives exactly at our start.
        binding = None
        for e in schedule.graph.in_edges(current.task):
            arrival = schedule.edge_arrivals.get(e.key)
            if arrival is not None and abs(arrival - current.start) <= _BIND_TOL:
                binding = e
                break
        if binding is not None:
            src_pl = placements[binding.src]
            segments.extend(
                _comm_segments(schedule, binding.key, src_pl.finish, b)
            )
            b = min(src_pl.finish, b)
            current = src_pl
            continue
        # Processor-bound: the previous task on this processor ends at our start.
        pls = by_proc[current.processor]
        idx = pls.index(current)
        if idx > 0 and abs(pls[idx - 1].finish - current.start) <= _BIND_TOL:
            current = pls[idx - 1]
            continue
        # Data arrived before our start but nothing binds exactly: the
        # end-technique queued the task behind its processor's insertion
        # order.  The gap back to the latest arrival is processor queueing.
        in_edges = schedule.graph.in_edges(current.task)
        if in_edges:
            e = max(
                in_edges, key=lambda e: schedule.edge_arrivals.get(e.key, 0.0)
            )
            src_pl = placements[e.src]
            arrival = schedule.edge_arrivals.get(e.key, src_pl.finish)
            gap_to = min(arrival, b)
            if b > gap_to:
                segments.append(
                    ChainSegment(
                        "proc_wait", gap_to, b, f"P{current.processor}",
                        task=current.task,
                    )
                )
                b = gap_to
            segments.extend(
                _comm_segments(schedule, e.key, src_pl.finish, b)
            )
            b = min(src_pl.finish, b)
            current = src_pl
            continue
        # An entry task that idled: the processor sat empty before it.
        break
    if b > 0.0:
        segments.append(
            ChainSegment("idle", 0.0, b, f"P{current.processor}")
        )
    segments.reverse()
    return ScheduleExplanation(
        schedule.algorithm, makespan, tuple(segments), tuple(timelines)
    )


# -- utilization timelines -----------------------------------------------------


def _merge_intervals(
    intervals: Iterable[tuple[float, float]],
) -> tuple[tuple[float, float], ...]:
    """Sort and coalesce overlapping/adjacent ``(start, finish)`` intervals."""
    merged: list[tuple[float, float]] = []
    for s, f in sorted(i for i in intervals if i[1] > i[0]):
        if merged and s <= merged[-1][1]:
            if f > merged[-1][1]:
                merged[-1] = (merged[-1][0], f)
        else:
            merged.append((s, f))
    return tuple(merged)


def utilization_timelines(schedule: Schedule) -> list[ResourceTimeline]:
    """Busy intervals of every used processor and link, processors first."""
    out: list[ResourceTimeline] = []
    by_proc: dict[int, list[tuple[float, float]]] = {}
    for pl in schedule.placements.values():
        by_proc.setdefault(pl.processor, []).append((pl.start, pl.finish))
    for vid in sorted(by_proc):
        out.append(ResourceTimeline(f"P{vid}", _merge_intervals(by_proc[vid])))

    by_link: dict[int, list[tuple[float, float]]] = {}
    ls = schedule.link_state
    if ls is not None:
        for lid in ls.used_links():
            by_link.setdefault(lid, []).extend(
                (slot.start, slot.finish) for slot in ls.slots(lid)
            )
    bs = schedule.bandwidth_state
    if bs is not None:
        for edge in bs.routes():
            for booking in bs.bookings_of(edge):
                by_link.setdefault(booking.lid, []).extend(
                    (seg.start, seg.finish) for seg in booking.usage
                )
    ps = schedule.packet_state
    if ps is not None:
        for lid in ps.used_links():
            by_link.setdefault(lid, []).extend(
                (slot.start, slot.finish) for slot in ps.slots(lid)
            )
    for lid in sorted(by_link):
        out.append(ResourceTimeline(f"L{lid}", _merge_intervals(by_link[lid])))
    return out
