"""PBA — packet-switched Basic Algorithm.

BA's framework (BFS minimal routing, blind-EFT processor choice) on the
packet-switched link engine of :mod:`repro.linksched.packets`: every
communication is divided into ``n_packets`` store-and-forward packets
pipelined along the route.  Bridges the gap the paper points out between
BA's circuit-switched idealization and real packet networks; the packet
count is the knob (`benchmarks/bench_packet_pipelining.py` sweeps it).
"""

from __future__ import annotations

from repro.core.base import ContentionScheduler
from repro.core.schedule import Schedule
from repro.exceptions import SchedulingError
from repro.linksched.packets import PacketLinkState
from repro.network.routing import bfs_route
from repro.network.topology import NetworkTopology, Route, Vertex
from repro.procsched.state import ProcessorState
from repro.taskgraph.graph import TaskGraph
from repro.types import EdgeKey, TaskId


class PacketBAScheduler(ContentionScheduler):
    """BA with packetized (store-and-forward, pipelined) communication."""

    name = "packet-ba"

    def __init__(self, *, n_packets: int = 4, hop_delay: float = 0.0) -> None:
        if n_packets < 1:
            raise SchedulingError(f"need at least one packet, got {n_packets}")
        self.n_packets = n_packets
        self.hop_delay = hop_delay
        self._pstate_links = PacketLinkState()
        self._arrivals: dict[EdgeKey, float] = {}

    def _begin(self, graph: TaskGraph, net: NetworkTopology) -> None:
        self._pstate_links = PacketLinkState()
        self._arrivals = {}

    def _bfs(self, net: NetworkTopology, src: int, dst: int) -> Route:
        # Memoized by the topology's shared route table.
        return bfs_route(net, src, dst)

    def _place_task(
        self,
        graph: TaskGraph,
        net: NetworkTopology,
        tid: TaskId,
        procs: list[Vertex],
        pstate: ProcessorState,
    ) -> None:
        weight = graph.task(tid).weight
        latest = max(
            (pstate.placement(p).finish for p in graph.predecessors(tid)),
            default=0.0,
        )
        best: tuple[float, int] | None = None
        chosen = procs[0]
        for proc in procs:
            finish = max(latest, pstate.finish_time(proc.vid)) + weight / proc.speed
            key = (finish, proc.vid)
            if best is None or key < best:
                best, chosen = key, proc
        t_dr = 0.0
        for e in sorted(graph.in_edges(tid), key=lambda e: e.src):
            src_pl = pstate.placement(e.src)
            if src_pl.processor == chosen.vid:
                arrival = src_pl.finish
                self._pstate_links.schedule_edge(
                    e.key, [], e.cost, src_pl.finish, self.n_packets
                )
            else:
                route = self._bfs(net, src_pl.processor, chosen.vid)
                arrival = self._pstate_links.schedule_edge(
                    e.key, route, e.cost, src_pl.finish, self.n_packets,
                    self.hop_delay,
                )
            self._arrivals[e.key] = arrival
            t_dr = max(t_dr, arrival)
        self._place_on(pstate, tid, chosen, weight, t_dr, insertion=False)

    def _finish(
        self, graph: TaskGraph, net: NetworkTopology, pstate: ProcessorState
    ) -> Schedule:
        return Schedule(
            algorithm=self.name,
            graph=graph,
            net=net,
            placements=pstate.placements(),
            edge_arrivals=dict(self._arrivals),
            packet_state=self._pstate_links,
        )
