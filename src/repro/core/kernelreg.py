"""Kernel registry: pick the batch-evaluation kernel implementation.

Mirrors the ``backend={array,object}`` switch one level down: the *array*
backend's hot loop exists twice — the always-importable pure-Python
reference (:class:`repro.core._kernel.PyKernel`) and an optional AOT-built
C extension (``repro.core._kernel_c`` via :mod:`repro.core._kernel_cwrap`)
— and this module is the single place that decides which one runs.

``kernel`` values (CLI ``--eval-kernel`` / scheduler ``kernel=``):

- ``auto`` (default) — use the compiled extension when importable, fall
  back to pure Python otherwise.  The fallback is observable: it bumps the
  ``kernel.auto_fallbacks`` counter (when obs is on) and is recorded in
  :func:`kernel_provenance`.
- ``python`` — force the reference kernel (the differential suites pin
  this to compare against the compiled one).
- ``compiled`` — require the extension; raises
  :class:`~repro.exceptions.SchedulingError` when it is not built, rather
  than silently degrading.

Both kernels are bit-identical by contract; selection therefore never
changes a makespan, only wall time.  Provenance (which kernel ran, plus
the build sidecar written by :mod:`repro.core.kernel_build`) is surfaced
in ``repro profile``, ``--stats`` and the run-ledger fingerprint so BENCH
records from different kernels never silently compare.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.core._kernel import KernelProtocol, PyKernel
from repro.exceptions import SchedulingError
from repro.obs import OBS

#: Accepted ``kernel=`` values, in CLI display order.
KERNEL_CHOICES = ("auto", "python", "compiled")

#: Shared construction signature of every kernel implementation:
#: (n, n_procs, exec_flat, edge_src, edge_cost, edge_off, cut_through, hop).
KernelFactory = Callable[
    [int, int, "list[float]", "list[int]", "list[float]", "list[int]", bool, float],
    KernelProtocol,
]


@dataclass(frozen=True)
class KernelInfo:
    """Outcome of one kernel resolution."""

    requested: str
    active: str
    compiled_available: bool
    fallback: bool


# Probe result cache: the import attempt runs once per process.  Tests
# simulate a missing extension by monkeypatching ``_probed = True`` and
# ``_compiled_factory = None``.
_probed = False
_compiled_factory: KernelFactory | None = None


def _probe() -> KernelFactory | None:
    """Import the compiled extension's wrapper, once; None when absent."""
    global _probed, _compiled_factory
    if not _probed:
        try:
            from repro.core._kernel_cwrap import CKernel
        except ImportError:
            _compiled_factory = None
        else:
            _compiled_factory = CKernel
        _probed = True
    return _compiled_factory


def compiled_available() -> bool:
    """Whether the AOT-built kernel extension is importable."""
    return _probe() is not None


def compiled_build_meta() -> dict[str, object] | None:
    """The build-provenance sidecar written next to the extension, if any."""
    meta_path = Path(__file__).with_name("_kernel_c_meta.json")
    try:
        raw = meta_path.read_text(encoding="utf-8")
    except OSError:
        return None
    try:
        doc = json.loads(raw)
    except ValueError:
        return None
    return doc if isinstance(doc, dict) else None


def resolve_kernel(requested: str = "auto") -> tuple[KernelFactory, KernelInfo]:
    """The kernel factory for ``requested``, plus resolution provenance."""
    if requested not in KERNEL_CHOICES:
        raise SchedulingError(
            f"unknown kernel {requested!r}; expected one of {KERNEL_CHOICES}"
        )
    factory = _probe()
    available = factory is not None
    if requested == "python":
        return PyKernel, KernelInfo("python", "python", available, False)
    if requested == "compiled":
        if factory is None:
            raise SchedulingError(
                "kernel='compiled' but the repro.core._kernel_c extension is "
                "not built; install the [compiled] extra and run "
                "`python -m repro.core.kernel_build` (or use kernel='auto')"
            )
        return factory, KernelInfo("compiled", "compiled", True, False)
    if factory is not None:
        return factory, KernelInfo("auto", "compiled", True, False)
    if OBS.on:
        OBS.metrics.counter("kernel.auto_fallbacks").inc()
    return PyKernel, KernelInfo("auto", "python", False, True)


def active_kernel(requested: str = "auto") -> str:
    """The kernel variant ``requested`` resolves to, without constructing."""
    if requested not in KERNEL_CHOICES:
        raise SchedulingError(
            f"unknown kernel {requested!r}; expected one of {KERNEL_CHOICES}"
        )
    if requested == "auto":
        return "compiled" if compiled_available() else "python"
    return requested


def kernel_provenance(requested: str = "auto") -> dict[str, object]:
    """JSON-ready provenance for ledger fingerprints and BENCH records."""
    active = active_kernel(requested)
    doc: dict[str, object] = {
        "requested": requested,
        "active": active,
        "compiled_available": compiled_available(),
    }
    if active == "compiled":
        meta = compiled_build_meta()
        if meta is not None:
            doc["build"] = meta
    return doc
