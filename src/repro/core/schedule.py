"""The result of scheduling: task placements plus link bookings."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import SchedulingError
from repro.linksched.bandwidth import BandwidthLinkState
from repro.linksched.commmodel import CUT_THROUGH, CommModel
from repro.linksched.packets import PacketLinkState
from repro.linksched.state import LinkScheduleState
from repro.network.topology import NetworkTopology
from repro.obs import ScheduleStats
from repro.procsched.state import TaskPlacement
from repro.taskgraph.graph import TaskGraph
from repro.types import EdgeKey, TaskId


@dataclass
class Schedule:
    """A complete schedule of ``graph`` onto ``net``.

    ``link_state`` carries per-link time-slot queues for slot-based
    algorithms (BA, OIHSA); ``bandwidth_state`` carries fluid bookings for
    BBSA; the classic (contention-free) scheduler sets neither.
    ``edge_arrivals`` maps every DAG edge to the time its data is fully
    available at the destination processor.
    """

    algorithm: str
    graph: TaskGraph
    net: NetworkTopology
    placements: dict[TaskId, TaskPlacement]
    edge_arrivals: dict[EdgeKey, float] = field(default_factory=dict)
    link_state: LinkScheduleState | None = None
    bandwidth_state: BandwidthLinkState | None = None
    packet_state: PacketLinkState | None = None
    #: switching mode / hop delay the schedule was built (and validates) under
    comm: CommModel = CUT_THROUGH
    #: observability capture of the producing run (None unless ``repro.obs``
    #: was enabled while scheduling)
    stats: ScheduleStats | None = None

    @property
    def makespan(self) -> float:
        """Completion time of the last task (0 for an empty schedule)."""
        return max((p.finish for p in self.placements.values()), default=0.0)

    def placement(self, task: TaskId) -> TaskPlacement:
        try:
            return self.placements[task]
        except KeyError:
            raise SchedulingError(f"task {task} is not in this schedule") from None

    def edge_route(self, edge: EdgeKey) -> tuple[int, ...]:
        """Link-id route of a DAG edge (empty for same-processor edges)."""
        if self.link_state is not None and self.link_state.has_route(edge):
            return self.link_state.route_of(edge)
        if self.bandwidth_state is not None and self.bandwidth_state.has_route(edge):
            return self.bandwidth_state.route_of(edge)
        if self.packet_state is not None and self.packet_state.has_route(edge):
            return self.packet_state.route_of(edge)
        raise SchedulingError(f"edge {edge} has no recorded route")

    def processors_used(self) -> set[int]:
        return {p.processor for p in self.placements.values()}

    def summary(self) -> str:
        """One-paragraph human-readable description."""
        n_links = 0
        if self.link_state is not None:
            n_links = len(self.link_state.used_links())
        elif self.bandwidth_state is not None:
            n_links = len(
                {lid for r in self.bandwidth_state.routes().values() for lid in r}
            )
        elif self.packet_state is not None:
            n_links = len(self.packet_state.used_links())
        return (
            f"{self.algorithm}: {self.graph.num_tasks} tasks on "
            f"{len(self.processors_used())}/{len(self.net.processors())} processors, "
            f"{self.graph.num_edges} edges over {n_links} links, "
            f"makespan {self.makespan:.2f}"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Schedule({self.summary()})"
