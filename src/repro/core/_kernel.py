"""The batch-evaluation kernel: `_resimulate`'s arithmetic + journal columns.

This module is the **always-importable pure-Python reference** for the hot
loop that scores mapping candidates in :mod:`repro.core.batch`.  It holds
exactly the state and arithmetic an ahead-of-time compiler needs to see —
and nothing else:

- :class:`ArrayLinkState` / :class:`ArrayProcState` — the flat column
  stores with positional undo journals (moved here from
  ``repro.linksched.arraystate``, which re-exports them).
- :class:`PyKernel` — the kernel object driven by
  :class:`~repro.core.batch.BatchMappingEvaluator`: divergence scan,
  journal rewind, and the fused ``_resimulate`` booking loop (bisect gap
  search, ``cost / speed`` durations, column insert/undo) verbatim.

The same state machine exists as a C translation in ``_kernel.c``, built
on demand into the optional extension ``repro.core._kernel_c`` (see
:mod:`repro.core.kernel_build`) and wrapped by
:mod:`repro.core._kernel_cwrap`.  Both implementations satisfy
:class:`KernelProtocol`; :mod:`repro.core.kernelreg` picks one.  The
contract between them is **bit-identity**: the C loop performs the exact
same IEEE-754 double operations in the same order (CPython floats are C
doubles), proven score-by-score and slot-by-slot by
``tests/test_batch_equivalence.py`` and the ``scores_checksum`` CI gates.

Kernel protocol
---------------

Construction fixes the static per-candidate facts as flat arrays (CSR
in-edges, row-major ``exec_flat``); per-processor-pair route plans arrive
later via :meth:`~PyKernel.set_plan` because routes resolve lazily.
:meth:`~PyKernel.evaluate` returns ``(makespan, divergence, missing_pair)``:
``missing_pair >= 0`` means simulation stopped at a pair whose route plan
is not resolved yet — the kernel has rolled back the partial position, and
the caller resolves the route and calls ``evaluate`` again (the retry
resumes from the completed prefix).  KER001-004 / ARR001 lint rules fence
this module into the compilable subset.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Protocol, Sequence

from repro.exceptions import SchedulingError
from repro.types import LinkId

#: Identity of this (reference) kernel implementation.
KERNEL_VARIANT = "python"
COMPILED = False

#: One link's bookings: parallel ``(starts, finishes)`` float columns,
#: sorted by start time (the gap search inserts in order).
LinkColumns = tuple[list[float], list[float]]

#: One route link's scoring view: its two booking columns plus speed.
LinkPlan = tuple[list[float], list[float], float]


class ArrayLinkState:
    """Flat per-link booking columns with a positional undo journal.

    Attributes are public on purpose: the kernel's hot loop appends to the
    journal columns directly instead of paying a method call per booking.
    The invariant it must maintain is the one :meth:`restore` relies on:
    for every booking, ``journal_starts[k][journal_index[k]]`` /
    ``journal_finishes[k][journal_index[k]]`` is the inserted entry, and
    entries are journaled in insertion order.
    """

    __slots__ = ("_columns", "journal_starts", "journal_finishes", "journal_index")

    def __init__(self) -> None:
        self._columns: dict[LinkId, LinkColumns] = {}
        #: journal columns, parallel: the two queue columns written and the
        #: index written at.  ``restore`` pops them newest-first.
        self.journal_starts: list[list[float]] = []
        self.journal_finishes: list[list[float]] = []
        self.journal_index: list[int] = []

    def columns(self, lid: LinkId) -> LinkColumns:
        """The ``(starts, finishes)`` columns of ``lid``, created on first use.

        Callers keep the returned list references (e.g. in a per-route plan)
        — the columns are mutated in place, never replaced, so the refs stay
        valid for the state's lifetime.
        """
        cols = self._columns.get(lid)
        if cols is None:
            cols = ([], [])
            self._columns[lid] = cols
        return cols

    def booked_links(self) -> list[LinkId]:
        """Link ids with at least one live booking, ascending."""
        return sorted(lid for lid, (s, _f) in self._columns.items() if s)

    def snapshot(self) -> int:
        """The current journal position; pass to :meth:`restore`."""
        return len(self.journal_index)

    def restore(self, mark: int) -> None:
        """Rewind all columns to an earlier :meth:`snapshot` (O(undone))."""
        journal_index = self.journal_index
        if not 0 <= mark <= len(journal_index):
            raise SchedulingError(
                f"snapshot mark {mark} out of range [0, {len(journal_index)}]"
            )
        journal_starts = self.journal_starts
        journal_finishes = self.journal_finishes
        while len(journal_index) > mark:
            i = journal_index.pop()
            del journal_starts.pop()[i]
            del journal_finishes.pop()[i]


class ArrayProcState:
    """Dense per-processor finish-time column with a positional journal.

    The scoring pass books tasks in append mode (``start = max(processor's
    last finish, data-ready)``), so one float per processor — the running
    finish time — is the whole processor state.  The journal records the
    overwritten ``(processor, old finish)`` pair per placement.
    """

    __slots__ = ("finish", "journal_proc", "journal_finish")

    def __init__(self, n_procs: int) -> None:
        if n_procs < 1:
            raise SchedulingError(f"need at least one processor, got {n_procs}")
        #: finish time of the last task placed on each dense processor index
        self.finish: list[float] = [0.0] * n_procs
        self.journal_proc: list[int] = []
        self.journal_finish: list[float] = []

    def snapshot(self) -> int:
        """The current journal position; pass to :meth:`restore`."""
        return len(self.journal_proc)

    def restore(self, mark: int) -> None:
        """Rewind the finish column to an earlier :meth:`snapshot`."""
        journal_proc = self.journal_proc
        if not 0 <= mark <= len(journal_proc):
            raise SchedulingError(
                f"snapshot mark {mark} out of range [0, {len(journal_proc)}]"
            )
        journal_finish = self.journal_finish
        finish = self.finish
        while len(journal_proc) > mark:
            finish[journal_proc.pop()] = journal_finish.pop()

    def makespan(self) -> float:
        """Completion time of the busiest processor (0 when all idle)."""
        return max(self.finish)


class LinkStateView(Protocol):
    """Read-only link-column introspection (differential tests)."""

    def columns(self, lid: LinkId) -> LinkColumns: ...

    def booked_links(self) -> list[LinkId]: ...


class ProcStateView(Protocol):
    """Read-only processor-column introspection (differential tests)."""

    @property
    def finish(self) -> list[float]: ...

    def makespan(self) -> float: ...


class KernelProtocol(Protocol):
    """What :class:`~repro.core.batch.BatchMappingEvaluator` drives."""

    variant: str
    compiled: bool

    def set_plan(
        self, pair: int, lids: Sequence[LinkId], speeds: Sequence[float]
    ) -> None: ...

    def evaluate(self, cand: list[int]) -> tuple[float, int, int]: ...

    @property
    def link_state(self) -> LinkStateView: ...

    @property
    def proc_state(self) -> ProcStateView: ...


class PyKernel:
    """Reference (pure-Python) implementation of the kernel protocol.

    Static facts arrive as flat arrays so every implementation shares one
    construction signature: ``exec_flat[pos * n_procs + pidx]`` is the
    precomputed ``weight / speed`` execution time, and the in-edges of
    order position ``pos`` are ``edge_src/edge_cost[edge_off[pos] :
    edge_off[pos + 1]]`` (source position, communication cost), sorted by
    source task id at construction of the evaluator.
    """

    variant = KERNEL_VARIANT
    compiled = COMPILED

    def __init__(
        self,
        n: int,
        n_procs: int,
        exec_flat: list[float],
        edge_src: list[int],
        edge_cost: list[float],
        edge_off: list[int],
        cut_through: bool,
        hop: float,
    ) -> None:
        self._n = n
        self._n_procs = n_procs
        self._exec_flat = exec_flat
        in_edges: list[tuple[tuple[int, float], ...]] = []
        for pos in range(n):
            lo, hi = edge_off[pos], edge_off[pos + 1]
            in_edges.append(
                tuple((edge_src[k], edge_cost[k]) for k in range(lo, hi))
            )
        self._in_edges = in_edges
        self._cut_through = cut_through
        self._hop = hop
        #: route plans per ``src_pidx * P + dst_pidx``, installed by set_plan
        self._plans: list[list[LinkPlan] | None] = [None] * (n_procs * n_procs)
        self._lstate = ArrayLinkState()
        self._pstate = ArrayProcState(n_procs)
        #: finish time per order position of the last simulated candidate.
        #: Overwritten in order during re-simulation, so positions >= the
        #: divergence point are always rewritten before being read — no
        #: journal needed.
        self._task_finish: list[float] = [0.0] * n
        #: dense processor index applied at each simulated order position
        self._applied: list[int] = []
        #: link-journal snapshot captured just before each position; the
        #: processor journal needs no marks — it holds exactly one entry per
        #: position, so its mark at position ``p`` is ``p``.
        self._lmarks: list[int] = []

    def set_plan(
        self, pair: int, lids: Sequence[LinkId], speeds: Sequence[float]
    ) -> None:
        """Install the route plan for processor pair ``pair``."""
        columns = self._lstate.columns
        plan: list[LinkPlan] = []
        for k in range(len(lids)):
            starts, finishes = columns(lids[k])
            plan.append((starts, finishes, speeds[k]))
        self._plans[pair] = plan

    def evaluate(self, cand: list[int]) -> tuple[float, int, int]:
        """Score ``cand``: ``(makespan, divergence, missing_pair)``.

        Rewinds the live columns to the longest prefix shared with the
        previously evaluated genome, then re-simulates the suffix.  A
        ``missing_pair >= 0`` return means position booking hit a processor
        pair with no installed route plan: the partial position was rolled
        back, the makespan is meaningless, and the caller must
        :meth:`set_plan` that pair and call ``evaluate`` again (the retry
        resumes after the completed prefix).
        """
        applied = self._applied
        divergence = len(applied)
        for pos in range(divergence):
            if cand[pos] != applied[pos]:
                divergence = pos
                break
        if divergence < len(applied):
            self._lstate.restore(self._lmarks[divergence])
            self._pstate.restore(divergence)
            del self._lmarks[divergence:]
            del applied[divergence:]
        missing = self._resimulate(cand, divergence)
        if missing >= 0:
            return 0.0, divergence, missing
        return self._pstate.makespan(), divergence, -1

    def _resimulate(self, cand: list[int], start: int) -> int:
        """Simulate order positions ``start..n`` onto the columns.

        The booking arithmetic is ``LinkScheduleState.book_edge_basic``
        verbatim — inlined bisect gap search, ``cost / speed`` durations,
        cut-through vs store-and-forward constraint propagation — minus the
        object bookkeeping.  Positions ``< start`` must already agree with
        ``cand`` (the caller rewound to the shared prefix).  Returns the
        first processor pair whose route plan is missing (after undoing the
        partial position), or ``-1`` on completion.
        """
        n = self._n
        n_procs = self._n_procs
        in_edges = self._in_edges
        exec_flat = self._exec_flat
        task_finish = self._task_finish
        plans = self._plans
        lstate = self._lstate
        journal_starts = lstate.journal_starts
        journal_finishes = lstate.journal_finishes
        journal_index = lstate.journal_index
        lmarks = self._lmarks
        pstate = self._pstate
        proc_finish = pstate.finish
        journal_proc = pstate.journal_proc
        journal_old = pstate.journal_finish
        applied = self._applied
        cut_through = self._cut_through
        hop = self._hop
        for pos in range(start, n):
            pidx = cand[pos]
            lmark = len(journal_index)
            lmarks.append(lmark)
            applied.append(pidx)
            t_dr = 0.0
            for src_pos, cost in in_edges[pos]:
                ready = task_finish[src_pos]
                src_pidx = cand[src_pos]
                if src_pidx == pidx or cost <= 0.0:
                    if ready > t_dr:
                        t_dr = ready
                    continue
                plan = plans[src_pidx * n_procs + pidx]
                if plan is None:
                    lstate.restore(lmark)
                    del lmarks[-1]
                    del applied[-1]
                    return src_pidx * n_procs + pidx
                est = ready
                min_finish = 0.0
                arrival = ready
                # repro-lint note: iterating the *plan* (one entry per route
                # link) is the per-link walk of the reference algorithm; the
                # column arrays themselves are only touched via bisect and
                # point inserts below.
                for starts, finishes, speed in plan:
                    duration = cost / speed
                    floor = min_finish - duration
                    lo = est if est >= floor else floor
                    n_booked = len(starts)
                    i = bisect_left(starts, lo + duration)
                    prev_finish = finishes[i - 1] if i > 0 else 0.0
                    while True:
                        slot_start = prev_finish if prev_finish > lo else lo
                        arrival = slot_start + duration
                        if i >= n_booked or arrival <= starts[i]:
                            break
                        prev_finish = finishes[i]
                        i += 1
                    starts.insert(i, slot_start)
                    finishes.insert(i, arrival)
                    journal_starts.append(starts)
                    journal_finishes.append(finishes)
                    journal_index.append(i)
                    if cut_through:
                        est = slot_start + hop
                        min_finish = arrival + hop
                    else:
                        est = arrival + hop
                        min_finish = 0.0
                if arrival > t_dr:
                    t_dr = arrival
            last_finish = proc_finish[pidx]
            journal_proc.append(pidx)
            journal_old.append(last_finish)
            task_start = last_finish if last_finish > t_dr else t_dr
            finish = task_start + exec_flat[pos * n_procs + pidx]
            proc_finish[pidx] = finish
            task_finish[pos] = finish
        return -1

    # -- introspection (differential tests) ----------------------------------

    @property
    def link_state(self) -> ArrayLinkState:
        """The live link columns (read-only use: differential tests)."""
        return self._lstate

    @property
    def proc_state(self) -> ArrayProcState:
        """The live processor column (read-only use: differential tests)."""
        return self._pstate
