"""Incremental mapping evaluation: prefix-state caching for mapping search.

:func:`repro.core.mapping.simulate_mapping` releases tasks in a fixed
priority-list order, and every booking decision at order position ``p``
depends only on the placements and link queues produced by positions
``< p``.  Two mappings that agree on every task up to (but excluding) the
first order position where they differ therefore produce **bit-identical**
simulation states over that shared prefix — the same determinism Sinnen &
Sousa's edge-scheduling substrate guarantees each full run, applied to run
*pairs*.  Mapping-search schedulers (simulated annealing, genetic search)
evaluate long streams of neighbouring candidates, so re-simulating the
shared prefix dominates their cost: ``BENCH_scheduler_cost.json`` showed
annealing spending ~300x BA's probe work on one workload.

:class:`IncrementalMappingEvaluator` keeps one live
:class:`~repro.linksched.state.LinkScheduleState` /
:class:`~repro.procsched.state.ProcessorState` pair in **journal mode**
(PR 3's undo-log machinery kept open for the state's lifetime) and records a
journal mark per order position.  Evaluating a candidate then:

1. scans the order for the **divergence point** — the first position whose
   task is mapped to a different processor than in the previously evaluated
   candidate (the order is precedence-safe, so every consumer of a moved
   task sits at a later position);
2. rewinds both states to that position's marks
   (:meth:`~repro.linksched.state.LinkScheduleState.rollback_to`,
   O(writes undone));
3. re-simulates only the suffix, with exactly the arithmetic of
   :func:`~repro.core.mapping.simulate_mapping`.

Makespans — and, via :meth:`IncrementalMappingEvaluator.schedule`, whole
schedules — are bit-identical to full re-simulation; only the work is
smaller.  Counters (all under ``if OBS.on``): ``mapping.evaluations``,
``mapping.prefix_hits`` (evaluations that reused a non-empty prefix),
``mapping.suffix_tasks_resimulated`` (positions actually re-run; the
hit-rate complement) and ``mapping.identical_skips`` (candidates identical
to the live state, returned from the cached makespan without re-simulating
anything).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.schedule import Schedule
from repro.exceptions import SchedulingError
from repro.linksched.commmodel import CUT_THROUGH, CommModel
from repro.linksched.insertion import schedule_edge_basic
from repro.linksched.state import LinkScheduleState
from repro.network.routing import bfs_route
from repro.network.topology import NetworkTopology, Route
from repro.obs import OBS
from repro.procsched.state import ProcessorState
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.priorities import priority_list
from repro.types import EdgeKey, TaskId, VertexId

#: per-position static facts: (task id, weight, in-edges as (src, key, cost))
_TaskInfo = tuple[TaskId, float, tuple[tuple[TaskId, EdgeKey, float], ...]]


class IncrementalMappingEvaluator:
    """Evaluate a stream of task->processor mappings with prefix reuse.

    Construction fixes the graph, network, communication model and task
    order; :meth:`evaluate` then scores candidates (makespan only, no
    bookkeeping), and :meth:`schedule` materializes a full
    :class:`~repro.core.schedule.Schedule` for a chosen mapping.

    The evaluator owns live link/processor state shared across calls, so it
    must not be used concurrently, and the schedule returned by
    :meth:`schedule` aliases that live state — treat :meth:`schedule` as the
    final call for a given evaluator, as :meth:`evaluate` would keep
    mutating the returned schedule's link queues.

    Unlike :func:`~repro.core.mapping.simulate_mapping`, per-candidate
    validation is lazy: a mapping that misses a task or maps one to a
    non-processor raises when the walk first touches it; extra keys for
    tasks outside the graph are ignored.
    """

    #: reported by ``repro profile`` / ``--stats``; the flat-column
    #: counterpart is :class:`repro.core.batch.BatchMappingEvaluator`
    backend = "object"

    def __init__(
        self,
        graph: TaskGraph,
        net: NetworkTopology,
        *,
        order: Sequence[TaskId] | None = None,
        comm: CommModel = CUT_THROUGH,
        algorithm: str = "mapping",
    ) -> None:
        task_order = list(order) if order is not None else priority_list(graph)
        if sorted(task_order) != sorted(t.tid for t in graph.tasks()):
            raise SchedulingError("order is not a permutation of the graph's tasks")
        self._graph = graph
        self._net = net
        self._comm = comm
        self._algorithm = algorithm
        self._order = task_order
        # Static per-position facts, so the hot loop never re-sorts in-edges
        # or re-reads task objects.
        self._infos: list[_TaskInfo] = [
            (
                tid,
                graph.task(tid).weight,
                tuple(
                    (e.src, e.key, e.cost)
                    for e in sorted(graph.in_edges(tid), key=lambda e: e.src)
                ),
            )
            for tid in task_order
        ]
        self._speeds: dict[VertexId, float] = {
            p.vid: p.speed for p in net.processors()
        }
        #: local front for the topology's shared route table (dict.get beats
        #: a function call per cross-processor edge)
        self._route_memo: dict[tuple[VertexId, VertexId], Route] = {}
        self._lstate = LinkScheduleState()
        self._lstate.enable_journal()
        self._pstate = ProcessorState()
        self._pstate.enable_journal()
        #: processor applied at each simulated order position (the prefix key)
        self._applied: list[VertexId] = []
        #: journal marks captured just before simulating each position
        self._lmarks: list[int] = []
        self._pmarks: list[int] = []
        #: makespan of the last evaluated candidate — returned verbatim when
        #: the next candidate is identical (divergence scan finds nothing)
        self._last_span: float | None = None

    # -- internals -----------------------------------------------------------

    def _divergence(self, mapping: Mapping[TaskId, VertexId]) -> int:
        """First order position where ``mapping`` disagrees with live state."""
        applied = self._applied
        order = self._order
        try:
            p = 0
            for p in range(len(applied)):
                if mapping[order[p]] != applied[p]:
                    return p
            return len(applied)
        except KeyError:
            raise SchedulingError(
                f"mapping misses tasks [{order[p]}]"
            ) from None

    def _rewind(self, position: int) -> None:
        """Roll both states back to just before ``position`` was simulated."""
        self._lstate.rollback_to(self._lmarks[position])
        self._pstate.rollback_to(self._pmarks[position])
        del self._lmarks[position:]
        del self._pmarks[position:]
        del self._applied[position:]

    def _resimulate(
        self,
        mapping: Mapping[TaskId, VertexId],
        start: int,
        arrivals: dict[EdgeKey, float] | None,
    ) -> None:
        """Simulate order positions ``start..n``, appending marks as it goes.

        Exactly :func:`~repro.core.mapping.simulate_mapping`'s inner loop:
        in-edges in source order, ready at the source's own finish, BFS
        routes, basic insertion, append-mode task placement.  Score-only
        passes (``arrivals is None``) book through the fused
        :meth:`~repro.linksched.state.LinkScheduleState.book_edge_basic`
        with route recording off — bit-identical slots and makespan, but no
        per-edge route bookkeeping to build, journal, or rewind.
        Materializing passes use the layered booking path so the resulting
        state carries everything ``simulate_mapping`` would record.
        """
        net = self._net
        comm = self._comm
        lstate = self._lstate
        pstate = self._pstate
        speeds = self._speeds
        route_memo = self._route_memo
        lmarks = self._lmarks
        pmarks = self._pmarks
        applied = self._applied
        placement_of = pstate.placement
        place_append = pstate.place_append
        book_fused = lstate.book_edge_basic
        score_only = arrivals is None
        infos = self._infos
        for position in range(start, len(infos)):
            tid, weight, in_edges = infos[position]
            try:
                vid = mapping[tid]
            except KeyError:
                raise SchedulingError(f"mapping misses tasks [{tid}]") from None
            try:
                speed = speeds[vid]
            except KeyError:
                raise SchedulingError(
                    f"task {tid} mapped to non-processor {vid}"
                ) from None
            lmarks.append(lstate.journal_mark())
            pmarks.append(pstate.journal_mark())
            applied.append(vid)
            t_dr = 0.0
            for src, ekey, cost in in_edges:
                src_pl = placement_of(src)
                if src_pl.processor == vid:
                    arrival = src_pl.finish
                    if not score_only:
                        lstate.record_route(ekey, ())
                else:
                    rkey = (src_pl.processor, vid)
                    route = route_memo.get(rkey)
                    if route is None:
                        route = bfs_route(net, src_pl.processor, vid)
                        route_memo[rkey] = route
                    if score_only:
                        arrival = book_fused(
                            ekey, route, cost, src_pl.finish, comm, record=False
                        )
                    else:
                        arrival = schedule_edge_basic(
                            lstate, ekey, route, cost, src_pl.finish, comm
                        )
                if arrivals is not None:
                    arrivals[ekey] = arrival
                if arrival > t_dr:
                    t_dr = arrival
            place_append(tid, vid, weight / speed, t_dr)

    def _makespan(self) -> float:
        finish_time = self._pstate.finish_time
        span = 0.0
        for vid in self._speeds:
            t = finish_time(vid)
            if t > span:
                span = t
        return span

    # -- public API ----------------------------------------------------------

    def evaluate(self, mapping: Mapping[TaskId, VertexId]) -> float:
        """Makespan of ``mapping`` — bit-identical to a full re-simulation.

        Rewinds to the divergence point against the previously evaluated
        candidate and re-simulates only the suffix; no arrival bookkeeping,
        no :class:`~repro.core.schedule.Schedule` construction.  Like BA's
        tentative processor probing, scoring runs under
        :meth:`~repro.obs.events.EventBus.quiet` — counters accumulate, but
        the event log only records materialized work.
        """
        position = self._divergence(mapping)
        last_span = self._last_span
        if position == len(self._order) and last_span is not None:
            # The candidate is identical to the live state: nothing to
            # rewind, nothing to re-simulate, and the makespan is the one
            # already computed (a genetic elite re-scored next generation,
            # an annealing move proposed twice in a row).
            if OBS.on:
                OBS.metrics.counter("mapping.evaluations").inc()
                OBS.metrics.counter("mapping.prefix_hits").inc()
                OBS.metrics.counter("mapping.identical_skips").inc()
            return last_span
        if position < len(self._applied):
            self._rewind(position)
        if OBS.on:
            OBS.metrics.counter("mapping.evaluations").inc()
            if position:
                OBS.metrics.counter("mapping.prefix_hits").inc()
            resimulated = len(self._order) - position
            if resimulated:
                OBS.metrics.counter("mapping.suffix_tasks_resimulated").inc(
                    resimulated
                )
        with OBS.bus.quiet():
            self._resimulate(mapping, position, None)
        span = self._makespan()
        self._last_span = span
        return span

    def schedule(self, mapping: Mapping[TaskId, VertexId]) -> Schedule:
        """Full :class:`~repro.core.schedule.Schedule` for ``mapping``.

        Forces a rebuild from position 0 (arrival times are not tracked
        during :meth:`evaluate`), so the result carries the same placements,
        arrivals and link queues as ``simulate_mapping(graph, net,
        mapping)``.  The schedule shares this evaluator's live link state;
        make this the evaluator's final call.
        """
        if self._applied:
            self._rewind(0)
        self._last_span = None
        arrivals: dict[EdgeKey, float] = {}
        self._resimulate(mapping, 0, arrivals)
        return Schedule(
            algorithm=self._algorithm,
            graph=self._graph,
            net=self._net,
            placements=self._pstate.placements(),
            edge_arrivals=arrivals,
            link_state=self._lstate,
            comm=self._comm,
        )
