"""Replay task placements under the real contention model.

The paper's motivation in one number: a schedule computed under the classic
contention-free assumption promises a makespan the network cannot honour.
:func:`replay_under_contention` takes any schedule's *placement decisions*
(task -> processor) and re-simulates execution with real edge scheduling
(BFS routes + basic insertion, like BA's engine): tasks keep their processor
and relative order but start only when their data has actually arrived over
contended links.

The returned schedule is valid under the full model, so
``replay.makespan / original.makespan`` measures how optimistic the
contention-free estimate was.
"""

from __future__ import annotations

from repro.core.mapping import simulate_mapping
from repro.core.schedule import Schedule
from repro.exceptions import SchedulingError
from repro.taskgraph.priorities import priority_list


def replay_under_contention(schedule: Schedule) -> Schedule:
    """Re-simulate ``schedule``'s placements on the contended network.

    Tasks are released in the original schedule's start-time order (ties by
    priority-list order) onto their original processors; communications are
    booked on BFS routes with basic insertion.  The result is a valid
    contention-model schedule with the same mapping.
    """
    graph = schedule.graph
    if set(schedule.placements) != {t.tid for t in graph.tasks()}:
        raise SchedulingError("schedule does not place every task of its graph")
    rank = {tid: i for i, tid in enumerate(priority_list(graph))}
    order = [
        pl.task
        for pl in sorted(
            schedule.placements.values(), key=lambda pl: (pl.start, rank[pl.task])
        )
    ]
    mapping = {tid: pl.processor for tid, pl in schedule.placements.items()}
    return simulate_mapping(
        graph,
        schedule.net,
        mapping,
        order=order,
        comm=schedule.comm,
        algorithm=f"{schedule.algorithm}+replay",
    )


def contention_penalty(schedule: Schedule) -> float:
    """How much longer the schedule really takes than it promised.

    Returns ``replayed makespan / promised makespan`` (>= 1 in practice for
    contention-free schedules on contended networks; ~1 when the schedule
    already accounted for contention).
    """
    if schedule.makespan <= 0:
        raise SchedulingError("cannot compute penalty of a zero-makespan schedule")
    return replay_under_contention(schedule).makespan / schedule.makespan
