"""Schedulers: the paper's contribution plus baselines.

- :class:`ClassicScheduler` — contention-free ideal model (the "traditional"
  list scheduling the paper argues against),
- :class:`BAScheduler` — Sinnen & Sousa's Basic Algorithm (BFS routing,
  basic insertion), the paper's comparison baseline,
- :class:`OIHSAScheduler` — Optimal Insertion Hybrid Scheduling Algorithm,
- :class:`BBSAScheduler` — Bandwidth Based Scheduling Algorithm.

All consume a :class:`repro.taskgraph.TaskGraph` and a
:class:`repro.network.NetworkTopology` and produce a validated
:class:`repro.core.schedule.Schedule`.
"""

from repro.core.schedule import Schedule
from repro.core.base import ContentionScheduler
from repro.core.classic import ClassicScheduler
from repro.core.ba import BAScheduler
from repro.core.oihsa import OIHSAScheduler
from repro.core.bbsa import BBSAScheduler
from repro.core.analysis import (
    processor_breakdown,
    schedule_critical_chain,
    contention_hotspots,
)
from repro.core.explain import (
    ChainSegment,
    ResourceTimeline,
    ScheduleExplanation,
    explain,
    utilization_timelines,
)
from repro.core.annealing import AnnealingScheduler
from repro.core.batch import BatchMappingEvaluator
from repro.core.eventsim import resimulate, SimReport
from repro.core.genetic import GeneticScheduler
from repro.core.cpop import CPOPScheduler
from repro.core.heft import HEFTScheduler
from repro.core.incremental import IncrementalMappingEvaluator
from repro.core.mapping import simulate_mapping
from repro.core.packetba import PacketBAScheduler
from repro.core.io import schedule_to_json, schedule_from_json
from repro.core.replay import replay_under_contention, contention_penalty
from repro.core.validate import validate_schedule
from repro.core.metrics import (
    makespan,
    speedup,
    efficiency,
    schedule_length_ratio,
    link_utilization,
    improvement_ratio,
)

#: Registry of scheduler classes by short name (used by experiment configs).
SCHEDULERS = {
    "classic": ClassicScheduler,
    "ba": BAScheduler,
    "oihsa": OIHSAScheduler,
    "bbsa": BBSAScheduler,
    "heft": HEFTScheduler,
    "cpop": CPOPScheduler,
    "annealing": AnnealingScheduler,
    "genetic": GeneticScheduler,
    "packet-ba": PacketBAScheduler,
}

__all__ = [
    "Schedule",
    "ContentionScheduler",
    "ClassicScheduler",
    "BAScheduler",
    "OIHSAScheduler",
    "BBSAScheduler",
    "HEFTScheduler",
    "CPOPScheduler",
    "AnnealingScheduler",
    "GeneticScheduler",
    "PacketBAScheduler",
    "IncrementalMappingEvaluator",
    "BatchMappingEvaluator",
    "simulate_mapping",
    "resimulate",
    "SimReport",
    "processor_breakdown",
    "schedule_critical_chain",
    "contention_hotspots",
    "ChainSegment",
    "ResourceTimeline",
    "ScheduleExplanation",
    "explain",
    "utilization_timelines",
    "schedule_to_json",
    "schedule_from_json",
    "replay_under_contention",
    "contention_penalty",
    "validate_schedule",
    "makespan",
    "speedup",
    "efficiency",
    "schedule_length_ratio",
    "link_utilization",
    "improvement_ratio",
    "SCHEDULERS",
]
