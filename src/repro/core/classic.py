"""Contention-free "classic model" list scheduler.

The traditional idealization the paper's introduction criticizes: processors
are fully connected by dedicated links, all communications proceed
concurrently, and an inter-processor edge simply takes ``c(e) / s`` time
units, with ``s`` the direct link's speed when one exists and the topology's
mean link speed otherwise.  No link is ever booked, so the resulting makespan
is an (optimistic) lower-bound-style estimate — the baseline that shows what
ignoring contention costs.
"""

from __future__ import annotations

from repro.core.base import ContentionScheduler
from repro.core.schedule import Schedule
from repro.network.topology import NetworkTopology, Vertex
from repro.procsched.state import ProcessorState
from repro.taskgraph.graph import TaskGraph
from repro.types import EdgeKey, TaskId


class ClassicScheduler(ContentionScheduler):
    """Earliest-finish-time list scheduling under the contention-free model."""

    name = "classic"

    def __init__(self, *, task_insertion: bool = False) -> None:
        self.task_insertion = task_insertion
        self._arrivals: dict[EdgeKey, float] = {}
        self._direct_speed: dict[tuple[int, int], float] = {}
        self._mls: float = 1.0

    def _begin(self, graph: TaskGraph, net: NetworkTopology) -> None:
        self._arrivals = {}
        self._mls = net.mean_link_speed() if net.num_links else 1.0
        # Direct-link speeds between processor pairs (max over parallel links).
        self._direct_speed = {}
        for p in net.processors():
            for link, nbr in net.out_links(p.vid):
                if net.vertex(nbr).is_processor:
                    key = (p.vid, nbr)
                    if link.speed > self._direct_speed.get(key, 0.0):
                        self._direct_speed[key] = link.speed

    def _comm_time(self, cost: float, src_proc: int, dst_proc: int) -> float:
        if src_proc == dst_proc or cost <= 0:
            return 0.0
        speed = self._direct_speed.get((src_proc, dst_proc), self._mls)
        return cost / speed

    def _place_task(
        self,
        graph: TaskGraph,
        net: NetworkTopology,
        tid: TaskId,
        procs: list[Vertex],
        pstate: ProcessorState,
    ) -> None:
        weight = graph.task(tid).weight
        best: tuple[float, int, Vertex] | None = None
        for proc in procs:
            t_dr = 0.0
            for e in graph.in_edges(tid):
                src_pl = pstate.placement(e.src)
                arrival = src_pl.finish + self._comm_time(
                    e.cost, src_pl.processor, proc.vid
                )
                t_dr = max(t_dr, arrival)
            _, start, finish = pstate.probe(
                proc.vid, weight / proc.speed, t_dr, insertion=self.task_insertion
            )
            if best is None or (finish, proc.vid) < (best[0], best[1]):
                best = (finish, proc.vid, proc)
        assert best is not None
        proc = best[2]
        t_dr = 0.0
        for e in graph.in_edges(tid):
            src_pl = pstate.placement(e.src)
            arrival = src_pl.finish + self._comm_time(e.cost, src_pl.processor, proc.vid)
            self._arrivals[e.key] = arrival
            t_dr = max(t_dr, arrival)
        self._place_on(pstate, tid, proc, weight, t_dr, insertion=self.task_insertion)

    def _finish(
        self, graph: TaskGraph, net: NetworkTopology, pstate: ProcessorState
    ) -> Schedule:
        return Schedule(
            algorithm=self.name,
            graph=graph,
            net=net,
            placements=pstate.placements(),
            edge_arrivals=dict(self._arrivals),
        )
