"""OIHSA — Optimal Insertion Hybrid Scheduling Algorithm (paper Section 4).

Four policy points, per the paper:

1. **Processor choice** (4.1): a static earliest-finish estimate using the
   mean link speed ``MLS`` instead of probing —
   ``min_P [ max( max_j(t_f(pred_j) + c(e_j,i)/MLS), t_f(P) ) + w(n_i)/s(P) ]``
   with the communication term dropped for predecessors already on ``P``.
2. **Edge priority** (4.2): in-edges booked in descending cost order, so big
   transfers grab routes and slots first.
3. **Modified routing** (4.3): Dijkstra whose relaxation cost is the finish
   time the edge would get on each link under *current* schedules (probed by
   basic insertion) — load-adaptive instead of hop-count BFS.
4. **Optimal insertion** (4.4): slots of already-booked edges may be deferred
   within their causality slack to open earlier gaps (Lemma 2 / Theorem 1).
"""

from __future__ import annotations

from repro.core.base import ContentionScheduler
from repro.core.schedule import Schedule
from repro.exceptions import SchedulingError
from repro.linksched.commmodel import CUT_THROUGH, CommModel
from repro.linksched.insertion import probe_basic
from repro.linksched.optimal_insertion import schedule_edge_optimal
from repro.linksched.state import LinkScheduleState
from repro.network.routing import bfs_route, dijkstra_route
from repro.network.topology import Link, NetworkTopology, Vertex
from repro.obs import OBS, span
from repro.procsched.state import ProcessorState
from repro.taskgraph.graph import TaskGraph
from repro.types import EdgeKey, TaskId


class OIHSAScheduler(ContentionScheduler):
    """Contention-aware scheduling with deferral-based optimal insertion."""

    name = "oihsa"

    def __init__(
        self,
        *,
        task_insertion: bool = False,
        modified_routing: bool = True,
        optimal_insertion: bool = True,
        edge_priority: bool = True,
        local_comm_exempt: bool = True,
        comm: CommModel = CUT_THROUGH,
    ) -> None:
        """The boolean knobs exist for the paper's ablations; the defaults
        are OIHSA as published."""
        self.task_insertion = task_insertion
        self.modified_routing = modified_routing
        self.optimal_insertion = optimal_insertion
        self.edge_priority = edge_priority
        self.local_comm_exempt = local_comm_exempt
        self.comm = comm
        self._lstate = LinkScheduleState()
        self._arrivals: dict[EdgeKey, float] = {}
        self._mls = 1.0

    def _begin(self, graph: TaskGraph, net: NetworkTopology) -> None:
        self._lstate = LinkScheduleState()
        self._arrivals = {}
        self._mls = net.mean_link_speed() if net.num_links else 1.0

    # -- routing + booking --------------------------------------------------

    def _route(
        self,
        net: NetworkTopology,
        src: int,
        dst: int,
        cost: float,
        ready: float,
    ):
        if not self.modified_routing:
            with span("routing"):
                return bfs_route(net, src, dst)

        def probe(link: Link, t: float) -> float:
            _, _, finish = probe_basic(self._lstate, link, cost, t)
            return finish

        with span("routing"):
            return dijkstra_route(net, src, dst, ready, probe)

    def _place_task(
        self,
        graph: TaskGraph,
        net: NetworkTopology,
        tid: TaskId,
        procs: list[Vertex],
        pstate: ProcessorState,
    ) -> None:
        from repro.linksched.insertion import schedule_edge_basic

        with span("processor_selection"):
            proc = self._mls_select_processor(
                graph, tid, procs, pstate, self._mls,
                local_comm_exempt=self.local_comm_exempt,
            )
        if OBS.on:
            OBS.metrics.counter("scheduler.processors_chosen").inc()
            OBS.emit(
                "processor_chosen",
                task=tid,
                proc=proc.vid,
                policy="mls-estimate",
                candidates=len(procs),
            )
        weight = graph.task(tid).weight
        if self.edge_priority:
            edges = self._in_edges_by_cost(graph, tid)
        else:
            edges = sorted(graph.in_edges(tid), key=lambda e: e.src)
        book = schedule_edge_optimal if self.optimal_insertion else schedule_edge_basic
        t_dr = 0.0
        for e in edges:
            src_pl = pstate.placement(e.src)
            if src_pl.processor == proc.vid:
                arrival = src_pl.finish
                self._lstate.record_route(e.key, ())
            else:
                route = self._route(
                    net, src_pl.processor, proc.vid, e.cost, src_pl.finish
                )
                with span("insertion"):
                    arrival = book(
                        self._lstate, e.key, route, e.cost, src_pl.finish, self.comm
                    )
            self._arrivals[e.key] = arrival
            t_dr = max(t_dr, arrival)
        self._place_on(pstate, tid, proc, weight, t_dr, insertion=self.task_insertion)

    def _finish(
        self, graph: TaskGraph, net: NetworkTopology, pstate: ProcessorState
    ) -> Schedule:
        if not self._arrivals and graph.num_edges:
            raise SchedulingError("internal error: no edges were booked")
        return Schedule(
            algorithm=self.name,
            graph=graph,
            net=net,
            placements=pstate.placements(),
            edge_arrivals=dict(self._arrivals),
            link_state=self._lstate,
            comm=self.comm,
        )
