"""OIHSA — Optimal Insertion Hybrid Scheduling Algorithm (paper Section 4).

Four policy points, per the paper:

1. **Processor choice** (4.1): a static earliest-finish estimate using the
   mean link speed ``MLS`` instead of probing —
   ``min_P [ max( max_j(t_f(pred_j) + c(e_j,i)/MLS), t_f(P) ) + w(n_i)/s(P) ]``
   with the communication term dropped for predecessors already on ``P``.
2. **Edge priority** (4.2): in-edges booked in descending cost order, so big
   transfers grab routes and slots first.
3. **Modified routing** (4.3): Dijkstra whose relaxation cost is the finish
   time the edge would get on each link under *current* schedules (probed by
   basic insertion) — load-adaptive instead of hop-count BFS.
4. **Optimal insertion** (4.4): slots of already-booked edges may be deferred
   within their causality slack to open earlier gaps (Lemma 2 / Theorem 1).
"""

from __future__ import annotations

from bisect import bisect_left
from heapq import heappop, heappush
from math import inf

from repro.core.base import ContentionScheduler
from repro.core.schedule import Schedule
from repro.exceptions import RoutingError, SchedulingError
from repro.linksched.commmodel import CUT_THROUGH, CommModel
from repro.linksched.insertion import probe_basic, schedule_edge_basic
from repro.linksched.optimal_insertion import schedule_edge_optimal
from repro.linksched.state import LinkScheduleState, _LinkQueue  # repro-lint: disable=TXN001 (type-only use below)
from repro.network.routing import _check_endpoints, bfs_route, dijkstra_route
from repro.network.topology import Link, NetworkTopology, Route, Vertex
from repro.obs import OBS, span
from repro.procsched.state import ProcessorState
from repro.taskgraph.graph import TaskGraph
from repro.types import EdgeKey, LinkId, TaskId


def _dijkstra_indexed(
    net: NetworkTopology,
    src: int,
    dst: int,
    ready_time: float,
    cost: float,
    queues: dict[LinkId, _LinkQueue],  # repro-lint: disable=TXN001 (type annotation only)
) -> Route:
    """Obs-off specialization of :func:`repro.network.routing.dijkstra_route`
    with OIHSA's indexed-queue gap probe inlined into the relax loop.

    Produces bit-identical routes to the generic loop driven by the closure
    probes in :meth:`OIHSAScheduler._route`: same labels (the probe arithmetic
    is copied verbatim), same ``(arrival, hops, vid)`` tie-breaks, and the
    same two lower-bound prunes (target-label and destination-label) — only
    the per-relaxation closure calls, the per-relaxation counter hooks, and
    the provably hit-free within-round memo lookups are gone.
    """
    _check_endpoints(net, src, dst)
    if src == dst:
        return []
    if ready_time < 0:
        raise RoutingError(f"negative ready time {ready_time}")
    n = net.num_vertices
    dist_t: list[float] = [inf] * n
    dist_h: list[int] = [0] * n
    parent_v: list[int] = [-1] * n
    parent_l: list[Link | None] = [None] * n
    done = bytearray(n)
    dist_t[src] = ready_time
    heap: list[tuple[float, int, int]] = [(ready_time, 0, src)]
    out_links = net.sorted_out_links
    queues_get = queues.get
    best_dst = inf
    while heap:
        d, hops, u = heappop(heap)
        if done[u]:
            continue
        done[u] = 1
        if u == dst:
            break
        nh = hops + 1
        for link, v in out_links(u):
            if done[v]:
                continue
            cur_t = dist_t[v]
            duration = cost / link.speed
            lb = d + duration
            if cur_t != inf or best_dst != inf:
                if lb > cur_t or (lb == cur_t and nh >= dist_h[v]) or lb > best_dst:
                    continue
            # Inlined gap probe (same arithmetic as ``_route``'s closure).
            q = queues_get(link.lid)
            if q is None:
                arrival = lb
            else:
                starts = q.starts
                finishes = q.finishes
                k = len(starts)
                i = bisect_left(starts, lb)  # lb == d + duration
                prev_finish = finishes[i - 1] if i > 0 else 0.0
                while True:
                    start = prev_finish if prev_finish > d else d
                    arrival = start + duration
                    if i >= k or arrival <= starts[i]:
                        break
                    prev_finish = finishes[i]
                    i += 1
            if arrival < cur_t or (arrival == cur_t and nh < dist_h[v]):
                dist_t[v] = arrival
                dist_h[v] = nh
                parent_v[v] = u
                parent_l[v] = link
                heappush(heap, (arrival, nh, v))
                if v == dst:
                    best_dst = arrival
    if parent_l[dst] is None:
        raise RoutingError(
            f"no route from processor {src} to {dst} in topology {net.name!r}"
        )
    route = []
    cur = dst
    while cur != src:
        route.append(parent_l[cur])
        cur = parent_v[cur]
    route.reverse()
    return route


class OIHSAScheduler(ContentionScheduler):
    """Contention-aware scheduling with deferral-based optimal insertion."""

    name = "oihsa"

    def __init__(
        self,
        *,
        task_insertion: bool = False,
        modified_routing: bool = True,
        optimal_insertion: bool = True,
        edge_priority: bool = True,
        local_comm_exempt: bool = True,
        probe_cache: bool = True,
        comm: CommModel = CUT_THROUGH,
    ) -> None:
        """The boolean knobs exist for the paper's ablations; the defaults
        are OIHSA as published."""
        self.task_insertion = task_insertion
        self.modified_routing = modified_routing
        self.optimal_insertion = optimal_insertion
        self.edge_priority = edge_priority
        self.local_comm_exempt = local_comm_exempt
        self.probe_cache = probe_cache
        self.comm = comm
        self._lstate = LinkScheduleState()
        self._arrivals: dict[EdgeKey, float] = {}
        self._mls = 1.0
        self._probe_memo: dict[tuple, float] = {}

    def _begin(self, graph: TaskGraph, net: NetworkTopology) -> None:
        self._lstate = LinkScheduleState()
        self._arrivals = {}
        self._mls = net.mean_link_speed() if net.num_links else 1.0
        self._probe_memo = {}

    # -- routing + booking --------------------------------------------------

    def _route(
        self,
        net: NetworkTopology,
        src: int,
        dst: int,
        cost: float,
        ready: float,
    ) -> Route:
        if not self.modified_routing:
            with span("routing"):
                return bfs_route(net, src, dst)

        lstate = self._lstate
        if not self.probe_cache:
            def probe(link: Link, t: float) -> float:
                _, _, finish = probe_basic(lstate, link, cost, t)
                return finish

            with span("routing"):
                return dijkstra_route(net, src, dst, ready, probe)

        if cost < 0:
            raise SchedulingError(f"negative communication cost {cost}")
        memo = self._probe_memo
        queues = lstate._queues  # hot path: skip per-probe method dispatch

        if OBS.on:
            # The contention-free bound is consulted on *every* relaxation,
            # so the probe-attempt counter lives here (one tick per
            # relaxation, exactly as when every relaxation called
            # ``probe_basic``).
            probes_c = OBS.metrics.counter("insertion.probes")
            misses_c = OBS.metrics.counter("routing.probe_cache_misses")
            hits_c = OBS.metrics.counter("routing.probe_cache_hits")

            def lower_bound(link: Link, t: float) -> float:
                probes_c.inc()
                return t + cost / link.speed

            def probe(link: Link, t: float) -> float:
                # Miss path inlines ``find_gap_indexed`` with ``min_finish=0``:
                # the start floor ``max(est, -duration)`` collapses to ``est``
                # (both operands non-negative here), and only the finish is
                # needed.
                lid = link.lid
                q = queues.get(lid)
                key = (lid, q.version if q is not None else 0, t, cost)
                finish = memo.get(key)
                if finish is not None:
                    hits_c.inc()
                    return finish
                duration = cost / link.speed
                if q is None:
                    finish = t + duration
                else:
                    starts = q.starts
                    finishes = q.finishes
                    n = len(starts)
                    i = bisect_left(starts, t + duration)
                    prev_finish = finishes[i - 1] if i > 0 else 0.0
                    while True:
                        start = prev_finish if prev_finish > t else t
                        finish = start + duration
                        if i >= n or finish <= starts[i]:
                            break
                        prev_finish = finishes[i]
                        i += 1
                memo[key] = finish
                misses_c.inc()
                return finish
        else:
            # Obs-off fast path: the fully inlined loop.  Skipping the memo
            # lookup there is *provably* a no-op, not a behavior change:
            # within one ``dijkstra_route`` round each link is relaxed
            # exactly once (from its settled tail vertex), so a within-round
            # memo can never hit; and a cross-round hit, were one possible,
            # would return the bit-identical value the probe recomputes
            # (entries are keyed by the queue version, so stale hits cannot
            # occur).
            with span("routing"):
                return _dijkstra_indexed(net, src, dst, ready, cost, queues)

        with span("routing"):
            return dijkstra_route(net, src, dst, ready, probe, lower_bound)

    def _place_task(
        self,
        graph: TaskGraph,
        net: NetworkTopology,
        tid: TaskId,
        procs: list[Vertex],
        pstate: ProcessorState,
    ) -> None:
        with span("processor_selection"):
            proc = self._mls_select_processor(
                graph, tid, procs, pstate, self._mls,
                local_comm_exempt=self.local_comm_exempt,
            )
        if OBS.on:
            OBS.metrics.counter("scheduler.processors_chosen").inc()
            OBS.emit(
                "processor_chosen",
                task=tid,
                proc=proc.vid,
                policy="mls-estimate",
                candidates=len(procs),
            )
        weight = graph.task(tid).weight
        if self.edge_priority:
            edges = self._in_edges_by_cost(graph, tid)
        else:
            edges = sorted(graph.in_edges(tid), key=lambda e: e.src)
        book = schedule_edge_optimal if self.optimal_insertion else schedule_edge_basic
        t_dr = 0.0
        for e in edges:
            src_pl = pstate.placement(e.src)
            if src_pl.processor == proc.vid:
                arrival = src_pl.finish
                self._lstate.record_route(e.key, ())
            else:
                route = self._route(
                    net, src_pl.processor, proc.vid, e.cost, src_pl.finish
                )
                with span("insertion"):
                    arrival = book(
                        self._lstate, e.key, route, e.cost, src_pl.finish, self.comm
                    )
            self._arrivals[e.key] = arrival
            t_dr = max(t_dr, arrival)
        self._place_on(pstate, tid, proc, weight, t_dr, insertion=self.task_insertion)

    def _finish(
        self, graph: TaskGraph, net: NetworkTopology, pstate: ProcessorState
    ) -> Schedule:
        if not self._arrivals and graph.num_edges:
            raise SchedulingError("internal error: no edges were booked")
        return Schedule(
            algorithm=self.name,
            graph=graph,
            net=net,
            placements=pstate.placements(),
            edge_arrivals=dict(self._arrivals),
            link_state=self._lstate,
            comm=self.comm,
        )
