"""Full-schedule validation: every model invariant in one auditable place.

Checks performed on any :class:`~repro.core.schedule.Schedule`:

1. every task placed exactly once, on a processor, with duration ``w/s``;
2. processor non-preemption (no overlapping task slots);
3. precedence: a task starts no earlier than every in-edge's arrival, and an
   arrival is no earlier than the source task's finish;
4. same-processor edges arrive exactly at the source's finish (empty route);
5. cross-processor edges have a route that actually connects the two
   processors;
6. slot-based schedules (BA/OIHSA): link non-preemption, slot durations
   ``c/s``, and the link causality condition along every route;
7. bandwidth schedules (BBSA): per-link usage never exceeds capacity,
   per-hop departures never outrun arrivals (causality), and every hop
   conserves the full communication volume.

Tolerance: see :data:`repro.linksched.causality.CAUSALITY_EPS`.
"""

from __future__ import annotations

from repro.core.schedule import Schedule
from repro.exceptions import ValidationError
from repro.linksched.causality import (
    CAUSALITY_EPS,
    check_route_causality,
    check_route_connectivity,
)


def validate_schedule(schedule: Schedule, eps: float = CAUSALITY_EPS) -> None:
    """Raise :class:`ValidationError` if any invariant is violated."""
    graph, net = schedule.graph, schedule.net
    placements = schedule.placements

    # 1. placements cover the graph, on processors, with the right durations.
    for task in graph.tasks():
        if task.tid not in placements:
            raise ValidationError(f"task {task.tid} is not placed")
        pl = placements[task.tid]
        vertex = net.vertex(pl.processor)
        if not vertex.is_processor:
            raise ValidationError(f"task {task.tid} placed on non-processor {pl.processor}")
        expected = task.weight / vertex.speed
        if abs((pl.finish - pl.start) - expected) > eps:
            raise ValidationError(
                f"task {task.tid}: duration {pl.finish - pl.start} != w/s = {expected}"
            )
        if pl.start < -eps:
            raise ValidationError(f"task {task.tid} starts before time 0: {pl.start}")
    extra = set(placements) - {t.tid for t in graph.tasks()}
    if extra:
        raise ValidationError(f"placements for unknown tasks {sorted(extra)}")

    # 2. processor non-preemption.
    by_proc: dict[int, list] = {}
    for pl in placements.values():
        by_proc.setdefault(pl.processor, []).append(pl)
    for vid, pls in by_proc.items():
        pls.sort(key=lambda p: p.start)
        for a, b in zip(pls, pls[1:]):
            if a.finish > b.start + eps:
                raise ValidationError(
                    f"tasks {a.task} and {b.task} overlap on processor {vid}: "
                    f"[{a.start}, {a.finish}) vs [{b.start}, {b.finish})"
                )

    # 3-5. per-edge checks.
    for e in graph.edges():
        src_pl, dst_pl = placements[e.src], placements[e.dst]
        arrival = schedule.edge_arrivals.get(e.key)
        if arrival is None:
            raise ValidationError(f"edge {e.key} has no recorded arrival time")
        if arrival < src_pl.finish - eps:
            raise ValidationError(
                f"edge {e.key} arrives at {arrival}, before its source finishes "
                f"at {src_pl.finish}"
            )
        if dst_pl.start < arrival - eps:
            raise ValidationError(
                f"task {e.dst} starts at {dst_pl.start}, before edge {e.key} "
                f"arrives at {arrival}"
            )
        same_proc = src_pl.processor == dst_pl.processor
        if same_proc and arrival > src_pl.finish + eps:
            raise ValidationError(
                f"same-processor edge {e.key} arrives at {arrival} != source "
                f"finish {src_pl.finish} (local communication is free)"
            )
        if (
            schedule.link_state is None
            and schedule.bandwidth_state is None
            and schedule.packet_state is None
        ):
            continue  # classic model: no routes to check
        route = schedule.edge_route(e.key)
        if same_proc or e.cost <= 0:
            if route and same_proc:
                raise ValidationError(f"same-processor edge {e.key} has route {route}")
        elif not route:
            raise ValidationError(
                f"cross-processor edge {e.key} ({src_pl.processor} -> "
                f"{dst_pl.processor}) has an empty route"
            )
        if route:
            check_route_connectivity(net, route, src_pl.processor, dst_pl.processor)

    # 6. slot-based link invariants.
    if schedule.link_state is not None:
        _validate_link_slots(schedule, eps)

    # 7. bandwidth (fluid) invariants.
    if schedule.bandwidth_state is not None:
        _validate_bandwidth(schedule, eps)

    # 8. packet-switched invariants.
    if schedule.packet_state is not None:
        _validate_packets(schedule, eps)


def _validate_link_slots(schedule: Schedule, eps: float) -> None:
    state = schedule.link_state
    assert state is not None
    graph, net = schedule.graph, schedule.net

    # Link non-preemption + queue sortedness.
    for lid in state.used_links():
        slots = state.slots(lid)
        for a, b in zip(slots, slots[1:]):
            if a.finish > b.start + eps:
                raise ValidationError(
                    f"slots for edges {a.edge} and {b.edge} overlap on link {lid}"
                )

    # Causality per edge, and the last-link finish must equal the arrival.
    for e in graph.edges():
        if not state.has_route(e.key):
            continue
        route = state.route_of(e.key)
        if not route:
            continue
        src_finish = schedule.placements[e.src].finish
        check_route_causality(
            state, net, e.key, e.cost, src_finish, eps, comm=schedule.comm
        )
        last = state.slot_of(e.key, route[-1])
        arrival = schedule.edge_arrivals[e.key]
        if abs(last.finish - arrival) > eps:
            raise ValidationError(
                f"edge {e.key}: recorded arrival {arrival} != last-link finish "
                f"{last.finish}"
            )


def _validate_bandwidth(schedule: Schedule, eps: float) -> None:
    state = schedule.bandwidth_state
    assert state is not None
    graph = schedule.graph

    # Capacity: the committed profile of every link stays <= 1.
    for e in graph.edges():
        for booking in state.bookings_of(e.key):
            prof = state.profile(booking.lid)
            if prof.max_used() > 1.0 + 1e-6:
                raise ValidationError(
                    f"link {booking.lid} over-committed: used {prof.max_used()}"
                )

    for e in graph.edges():
        if not state.has_route(e.key):
            continue
        route = state.route_of(e.key)
        if not route:
            continue
        bookings = state.bookings_of(e.key)
        if tuple(b.lid for b in bookings) != route:
            raise ValidationError(
                f"edge {e.key}: bookings {[b.lid for b in bookings]} do not match "
                f"route {route}"
            )
        src_finish = schedule.placements[e.src].finish
        prev_dep = None
        for booking in bookings:
            # Volume conservation on every hop.
            if abs(booking.departure.final_volume - e.cost) > max(eps, 1e-6 * e.cost):
                raise ValidationError(
                    f"edge {e.key} on link {booking.lid}: forwarded "
                    f"{booking.departure.final_volume} of {e.cost}"
                )
            # Causality: departures never outrun arrivals, checked at every
            # departure breakpoint.
            for t, v in booking.departure.points:
                if v > booking.arrival.value(t) + max(eps, 1e-6 * e.cost):
                    raise ValidationError(
                        f"edge {e.key} on link {booking.lid}: forwarded {v} by "
                        f"t={t} but only {booking.arrival.value(t)} had arrived"
                    )
            if prev_dep is not None:
                tol = max(eps, 1e-6 * e.cost)
                if schedule.comm.mode == "cut-through":
                    # Data on this hop may not outrun the previous hop's
                    # departure (shifted by the hop delay).
                    for t, v in booking.departure.points:
                        if v > prev_dep.value(t - schedule.comm.hop_delay) + tol:
                            raise ValidationError(
                                f"edge {e.key} on link {booking.lid}: forwarded "
                                f"{v} by t={t}, outrunning the previous hop"
                            )
                else:
                    lower = prev_dep.finish_time() + schedule.comm.hop_delay
                    if booking.departure.start_time < lower - eps:
                        raise ValidationError(
                            f"edge {e.key} on link {booking.lid}: store-and-forward "
                            f"hop starts at {booking.departure.start_time}, before "
                            f"the previous hop completes at {lower}"
                        )
            prev_dep = booking.departure
            if booking.departure.start_time < src_finish - eps:
                raise ValidationError(
                    f"edge {e.key} on link {booking.lid}: transfer begins at "
                    f"{booking.departure.start_time}, before the source finishes "
                    f"at {src_finish}"
                )
        arrival = schedule.edge_arrivals[e.key]
        if abs(bookings[-1].departure.finish_time() - arrival) > eps:
            raise ValidationError(
                f"edge {e.key}: recorded arrival {arrival} != final hop finish "
                f"{bookings[-1].departure.finish_time()}"
            )


def _validate_packets(schedule: Schedule, eps: float) -> None:
    state = schedule.packet_state
    assert state is not None
    graph, net = schedule.graph, schedule.net

    # Link non-preemption across all packets.
    for lid in state.used_links():
        slots = sorted(state.slots(lid), key=lambda s: s.start)
        for a, b in zip(slots, slots[1:]):
            if a.finish > b.start + eps:
                raise ValidationError(
                    f"packet slots {a.edge}#{a.packet} and {b.edge}#{b.packet} "
                    f"overlap on link {lid}"
                )

    for e in graph.edges():
        if not state.has_route(e.key):
            continue
        route = state.route_of(e.key)
        if not route:
            continue
        n_packets = state.packets_of(e.key)
        if n_packets < 1:
            raise ValidationError(f"edge {e.key} routed but has no packets")
        packet_cost = e.cost / n_packets
        src_finish = schedule.placements[e.src].finish
        prev_link_finish: list[float] | None = None
        for lid in route:
            link = net.link(lid)
            slots = state.slots_of(e.key, lid)
            if [s.packet for s in slots] != list(range(n_packets)):
                raise ValidationError(
                    f"edge {e.key} on link {lid}: packets "
                    f"{[s.packet for s in slots]} != 0..{n_packets - 1}"
                )
            expected = packet_cost / link.speed
            for i, s in enumerate(slots):
                if abs(s.duration - expected) > eps:
                    raise ValidationError(
                        f"edge {e.key}#{s.packet} on link {lid}: duration "
                        f"{s.duration} != c/(k*s) = {expected}"
                    )
                # FIFO within the edge on this link.
                if i > 0 and s.start < slots[i - 1].finish - eps:
                    raise ValidationError(
                        f"edge {e.key} packets out of order on link {lid}"
                    )
                # Store-and-forward per packet across hops.
                lower = src_finish if prev_link_finish is None else prev_link_finish[i]
                if s.start < lower - eps:
                    raise ValidationError(
                        f"edge {e.key}#{s.packet} starts on link {lid} at "
                        f"{s.start}, before it fully crossed the previous hop "
                        f"at {lower}"
                    )
            prev_link_finish = [s.finish for s in slots]
        assert prev_link_finish is not None
        arrival = schedule.edge_arrivals[e.key]
        if abs(prev_link_finish[-1] - arrival) > eps:
            raise ValidationError(
                f"edge {e.key}: recorded arrival {arrival} != last packet's "
                f"last-hop finish {prev_link_finish[-1]}"
            )
