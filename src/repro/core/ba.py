"""BA — the Basic Algorithm baseline (paper Section 3, Algorithm 1).

BA is Sinnen & Sousa's contention-aware list scheduler: BFS minimal
(hop-count) routing and basic insertion on every route link.  Two details of
the baseline are ambiguous between Sinnen's original and Han & Wang's
description of it (Section 4.1), so both are implemented behind flags, with
the defaults following *this paper's* description — it is the baseline its
figures were measured against:

- ``processor_choice``:
  * ``"blind-eft"`` (default) — the paper says BA picks the processor with
    the earliest task finish "while ignoring the effect of edge
    communication": ``min_P max(latest pred finish, t_f(P)) + w/s(P)``.
  * ``"tentative"`` — Sinnen-faithful: every processor is probed by
    tentatively booking all in-edges under a link transaction and rolled
    back; the earliest *actual* finish wins.  Much stronger and slower.

- ``shared_ready_time``:
  * ``True`` (default) — per the paper, "the start time of the communication
    data from predecessors to the ready task is all the same, that is, the
    finish time of the predecessor which finishes latest": every in-edge
    becomes available only at the *latest* predecessor finish.
  * ``False`` — each edge is available at its own source's finish.
"""

from __future__ import annotations

from typing import Literal

from repro.core.base import ContentionScheduler
from repro.core.schedule import Schedule
from repro.exceptions import SchedulingError
from repro.linksched.commmodel import CUT_THROUGH, CommModel
from repro.linksched.insertion import schedule_edge_basic
from repro.linksched.state import LinkScheduleState
from repro.network.routing import bfs_route
from repro.network.topology import NetworkTopology, Route, Vertex
from repro.obs import OBS, span
from repro.procsched.state import ProcessorState
from repro.taskgraph.graph import TaskGraph
from repro.types import EdgeKey, TaskId


class BAScheduler(ContentionScheduler):
    """Basic Algorithm: BFS minimal routing + basic insertion."""

    name = "ba"

    def __init__(
        self,
        *,
        processor_choice: Literal["blind-eft", "tentative"] = "blind-eft",
        shared_ready_time: bool = True,
        task_insertion: bool = False,
        comm: CommModel = CUT_THROUGH,
    ) -> None:
        if processor_choice not in ("blind-eft", "tentative"):
            raise SchedulingError(f"unknown processor_choice {processor_choice!r}")
        self.processor_choice = processor_choice
        self.shared_ready_time = shared_ready_time
        self.task_insertion = task_insertion
        self.comm = comm
        self._lstate = LinkScheduleState()
        self._arrivals: dict[EdgeKey, float] = {}

    def _begin(self, graph: TaskGraph, net: NetworkTopology) -> None:
        self._lstate = LinkScheduleState()
        self._arrivals = {}

    def _bfs(self, net: NetworkTopology, src: int, dst: int) -> Route:
        # BFS routes are static (load-independent); the topology's shared
        # route table memoizes them across runs and engines.
        with span("routing"):
            return bfs_route(net, src, dst)

    def _book_in_edges(
        self,
        graph: TaskGraph,
        net: NetworkTopology,
        tid: TaskId,
        proc: Vertex,
        pstate: ProcessorState,
        arrivals_out: dict[EdgeKey, float] | None,
    ) -> float:
        """Schedule all in-edges of ``tid`` toward ``proc``; return data-ready time."""
        edges = sorted(graph.in_edges(tid), key=lambda e: e.src)
        latest = max((pstate.placement(e.src).finish for e in edges), default=0.0)
        t_dr = 0.0
        for e in edges:
            src_pl = pstate.placement(e.src)
            if src_pl.processor == proc.vid:
                arrival = src_pl.finish
                self._lstate.record_route(e.key, ())
            else:
                ready = latest if self.shared_ready_time else src_pl.finish
                route = self._bfs(net, src_pl.processor, proc.vid)
                with span("insertion"):
                    arrival = schedule_edge_basic(
                        self._lstate, e.key, route, e.cost, ready, self.comm
                    )
            if arrivals_out is not None:
                arrivals_out[e.key] = arrival
            t_dr = max(t_dr, arrival)
        return t_dr

    def _select_processor(
        self,
        graph: TaskGraph,
        net: NetworkTopology,
        tid: TaskId,
        procs: list[Vertex],
        pstate: ProcessorState,
    ) -> Vertex:
        weight = graph.task(tid).weight
        best: tuple[float, int] | None = None
        chosen = procs[0]
        if self.processor_choice == "blind-eft":
            with span("processor_selection"):
                latest = max(
                    (pstate.placement(p).finish for p in graph.predecessors(tid)),
                    default=0.0,
                )
                for proc in procs:
                    finish = (
                        max(latest, pstate.finish_time(proc.vid)) + weight / proc.speed
                    )
                    key = (finish, proc.vid)
                    if best is None or key < best:
                        best, chosen = key, proc
            return chosen
        # Tentative probing books and rolls back real link slots; keep the
        # decision log to committed work only (counters still accumulate).
        with span("processor_selection"), OBS.bus.quiet():
            for proc in procs:
                if OBS.on:
                    OBS.metrics.counter("scheduler.processors_probed").inc()
                self._lstate.begin()
                try:
                    t_dr = self._book_in_edges(graph, net, tid, proc, pstate, None)
                    _, _, finish = pstate.probe(
                        proc.vid,
                        weight / proc.speed,
                        t_dr,
                        insertion=self.task_insertion,
                    )
                finally:
                    self._lstate.rollback()
                key = (finish, proc.vid)
                if best is None or key < best:
                    best, chosen = key, proc
        return chosen

    def _place_task(
        self,
        graph: TaskGraph,
        net: NetworkTopology,
        tid: TaskId,
        procs: list[Vertex],
        pstate: ProcessorState,
    ) -> None:
        chosen = self._select_processor(graph, net, tid, procs, pstate)
        if OBS.on:
            OBS.metrics.counter("scheduler.processors_chosen").inc()
            OBS.emit(
                "processor_chosen",
                task=tid,
                proc=chosen.vid,
                policy=self.processor_choice,
                candidates=len(procs),
            )
        t_dr = self._book_in_edges(graph, net, tid, chosen, pstate, self._arrivals)
        self._place_on(
            pstate,
            tid,
            chosen,
            graph.task(tid).weight,
            t_dr,
            insertion=self.task_insertion,
        )

    def _finish(
        self, graph: TaskGraph, net: NetworkTopology, pstate: ProcessorState
    ) -> Schedule:
        return Schedule(
            algorithm=self.name,
            graph=graph,
            net=net,
            placements=pstate.placements(),
            edge_arrivals=dict(self._arrivals),
            link_state=self._lstate,
            comm=self.comm,
        )
