"""Independent discrete-event re-execution of a schedule.

A second, structurally different implementation of the model used as a
cross-check: instead of trusting the scheduler's bookkeeping, the schedule's
*decisions* (task -> processor, edge -> route, per-link slot times or fluid
bookings) are re-executed as a discrete-event simulation that only fires an
event when all of its prerequisites have fired.  If the schedule's recorded
times are self-consistent, the simulation reproduces every task finish time
exactly; any divergence indicates a bookkeeping bug that the static
validator family might express differently.

This catches a class of errors static checks can miss by construction —
e.g. a *cyclic* wait between bookings that individually look fine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.schedule import Schedule
from repro.exceptions import ValidationError
from repro.types import TaskId


@dataclass(frozen=True, slots=True)
class SimReport:
    """Outcome of the event-driven re-execution."""

    task_finish: dict[TaskId, float]
    makespan: float


def resimulate(schedule: Schedule, eps: float = 1e-6) -> SimReport:
    """Re-execute the schedule event by event; verify recorded times.

    Events: a task may *start* once (a) its processor predecessor (previous
    task in the processor's recorded order) has finished and (b) every
    in-edge has arrived; an edge *arrives* at its recorded arrival, which
    must be no earlier than its source task's simulated finish.  Raises
    :class:`ValidationError` on any divergence from the recorded times or if
    the event graph deadlocks (cyclic waits).
    """
    graph = schedule.graph
    placements = schedule.placements

    # Processor order from recorded starts.
    proc_prev: dict[TaskId, TaskId] = {}
    by_proc: dict[int, list] = {}
    for pl in placements.values():
        by_proc.setdefault(pl.processor, []).append(pl)
    for pls in by_proc.values():
        pls.sort(key=lambda p: (p.start, p.task))
        for a, b in zip(pls, pls[1:]):
            proc_prev[b.task] = a.task

    finish: dict[TaskId, float] = {}
    pending = set(graph.task_ids())
    progress = True
    while pending and progress:
        progress = False
        for tid in sorted(pending):
            pl = placements[tid]
            prev = proc_prev.get(tid)
            if prev is not None and prev not in finish:
                continue
            if any(p not in finish for p in graph.predecessors(tid)):
                continue
            # All prerequisites simulated: compute the earliest legal start.
            ready = finish[prev] if prev is not None else 0.0
            for e in graph.in_edges(tid):
                arrival = schedule.edge_arrivals.get(e.key)
                if arrival is None:
                    raise ValidationError(f"edge {e.key} has no recorded arrival")
                if arrival < finish[e.src] - eps:
                    raise ValidationError(
                        f"edge {e.key} recorded arrival {arrival} precedes its "
                        f"source's simulated finish {finish[e.src]}"
                    )
                ready = max(ready, arrival)
            if pl.start < ready - eps:
                raise ValidationError(
                    f"task {tid} recorded start {pl.start} is earlier than its "
                    f"simulated ready time {ready}"
                )
            # Execution time derived independently from the model, not from
            # the recorded placement.
            speed = schedule.net.vertex(pl.processor).speed
            simulated_finish = pl.start + graph.task(tid).weight / speed
            if abs(simulated_finish - pl.finish) > max(eps, 1e-9 * abs(simulated_finish)):
                raise ValidationError(
                    f"task {tid}: simulated finish {simulated_finish} != "
                    f"recorded {pl.finish}"
                )
            finish[tid] = simulated_finish
            pending.discard(tid)
            progress = True
    if pending:
        raise ValidationError(
            f"schedule deadlocks in event simulation: tasks {sorted(pending)[:5]} "
            f"wait forever (cyclic processor/data dependencies)"
        )
    makespan = max(finish.values(), default=0.0)
    if abs(makespan - schedule.makespan) > eps:
        raise ValidationError(
            f"simulated makespan {makespan} != recorded {schedule.makespan}"
        )
    return SimReport(task_finish=finish, makespan=makespan)
