"""Schedule post-mortem analysis.

Answers "why is the makespan what it is?" for any schedule:

- :func:`processor_breakdown` — per-processor busy / idle-waiting time,
- :func:`schedule_critical_chain` — the chain of tasks and communications
  whose end-to-end length *is* the makespan (the schedule's own critical
  path, distinct from the graph's static critical path),
- :func:`contention_hotspots` — links ranked by how long they kept edges
  waiting beyond their contention-free transfer time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.schedule import Schedule
from repro.exceptions import SchedulingError
from repro.types import EPS, EdgeKey, TaskId


@dataclass(frozen=True, slots=True)
class ProcessorLoad:
    """How one processor spent the schedule's makespan."""

    processor: int
    busy: float
    idle: float
    n_tasks: int

    @property
    def utilization(self) -> float:
        total = self.busy + self.idle
        return self.busy / total if total > 0 else 0.0


def processor_breakdown(schedule: Schedule) -> list[ProcessorLoad]:
    """Busy/idle split of every processor over [0, makespan)."""
    makespan = schedule.makespan
    by_proc: dict[int, list] = {p.vid: [] for p in schedule.net.processors()}
    for pl in schedule.placements.values():
        by_proc[pl.processor].append(pl)
    out = []
    for vid, pls in sorted(by_proc.items()):
        busy = sum(pl.finish - pl.start for pl in pls)
        out.append(
            ProcessorLoad(
                processor=vid,
                busy=busy,
                idle=max(0.0, makespan - busy),
                n_tasks=len(pls),
            )
        )
    return out


@dataclass(frozen=True, slots=True)
class ChainLink:
    """One step of the schedule's critical chain."""

    kind: str  # "task" or "comm"
    task: TaskId | None
    edge: EdgeKey | None
    start: float
    finish: float


def schedule_critical_chain(schedule: Schedule) -> list[ChainLink]:
    """Walk back from the last-finishing task along binding constraints.

    At each task, the binding constraint is either the in-edge whose arrival
    equals (within tolerance) the task's start, or — when the task waited on
    its processor rather than on data — the previous task on the same
    processor.  The walk ends at a task starting at time 0.
    """
    if not schedule.placements:
        return []
    placements = schedule.placements
    by_proc: dict[int, list] = {}
    for pl in placements.values():
        by_proc.setdefault(pl.processor, []).append(pl)
    for pls in by_proc.values():
        pls.sort(key=lambda p: p.start)

    chain: list[ChainLink] = []
    current = max(placements.values(), key=lambda p: (p.finish, p.task))
    guard = 0
    while True:
        guard += 1
        if guard > len(placements) * 4:
            raise SchedulingError("critical-chain walk failed to terminate")
        chain.append(
            ChainLink("task", current.task, None, current.start, current.finish)
        )
        if current.start <= EPS:
            break
        # Data-bound? Find an in-edge arriving exactly at our start.
        binding_edge = None
        for e in schedule.graph.in_edges(current.task):
            arrival = schedule.edge_arrivals.get(e.key)
            if arrival is not None and abs(arrival - current.start) <= 1e-6:
                binding_edge = e
                break
        if binding_edge is not None:
            src_pl = placements[binding_edge.src]
            chain.append(
                ChainLink(
                    "comm",
                    None,
                    binding_edge.key,
                    src_pl.finish,
                    schedule.edge_arrivals[binding_edge.key],
                )
            )
            current = src_pl
            continue
        # Processor-bound? The previous task on this processor ends at our start.
        pls = by_proc[current.processor]
        idx = pls.index(current)
        if idx > 0 and abs(pls[idx - 1].finish - current.start) <= 1e-6:
            current = pls[idx - 1]
            continue
        # Data-ready before start but no exact binder (end-technique queueing
        # gap): fall back to the latest-arriving in-edge / predecessor.
        preds = schedule.graph.in_edges(current.task)
        if preds:
            e = max(preds, key=lambda e: schedule.edge_arrivals.get(e.key, 0.0))
            src_pl = placements[e.src]
            chain.append(
                ChainLink(
                    "comm", None, e.key, src_pl.finish,
                    schedule.edge_arrivals.get(e.key, src_pl.finish),
                )
            )
            current = src_pl
            continue
        break  # an entry task that idled: chain ends here
    chain.reverse()
    return chain


@dataclass(frozen=True, slots=True)
class LinkHotspot:
    """Aggregate queueing on one link."""

    lid: int
    busy_time: float
    total_wait: float
    n_transfers: int


def contention_hotspots(schedule: Schedule) -> list[LinkHotspot]:
    """Links ranked by total waiting they imposed on transfers.

    Wait of a slot = its start minus the earliest moment the data could have
    entered the link (source finish for the first hop, previous hop's slot
    start under cut-through / finish under store-and-forward).
    """
    state = schedule.link_state
    if state is None:
        return []
    waits: dict[int, float] = {}
    counts: dict[int, int] = {}
    for e in schedule.graph.edges():
        if not state.has_route(e.key):
            continue
        route = state.route_of(e.key)
        if not route:
            continue
        earliest = schedule.placements[e.src].finish
        for lid in route:
            slot = state.slot_of(e.key, lid)
            waits[lid] = waits.get(lid, 0.0) + max(0.0, slot.start - earliest)
            counts[lid] = counts.get(lid, 0) + 1
            earliest, _ = schedule.comm.next_constraints(slot.start, slot.finish)
    out = []
    for lid, wait in waits.items():
        busy = sum(s.duration for s in state.slots(lid))
        out.append(LinkHotspot(lid, busy, wait, counts[lid]))
    out.sort(key=lambda h: -h.total_wait)
    return out
