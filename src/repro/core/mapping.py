"""Simulate a fixed task->processor mapping under the contention model.

Several consumers need "given this mapping, what really happens on the
network?": replaying contention-free schedules (:mod:`repro.core.replay`),
search-based schedulers that explore mappings (simulated annealing), and
what-if analysis.  :func:`simulate_mapping` is that one engine: tasks are
released in priority-list order onto their mapped processors, in-edges are
booked on BFS routes with basic insertion, and the result is a fully valid
contention-model schedule.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.schedule import Schedule
from repro.exceptions import SchedulingError
from repro.linksched.commmodel import CUT_THROUGH, CommModel
from repro.linksched.insertion import schedule_edge_basic
from repro.linksched.state import LinkScheduleState
from repro.network.routing import bfs_route
from repro.network.topology import NetworkTopology
from repro.procsched.state import ProcessorState
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.priorities import priority_list
from repro.types import TaskId, VertexId


def simulate_mapping(
    graph: TaskGraph,
    net: NetworkTopology,
    mapping: Mapping[TaskId, VertexId],
    *,
    order: Sequence[TaskId] | None = None,
    comm: CommModel = CUT_THROUGH,
    algorithm: str = "mapping",
) -> Schedule:
    """Schedule ``graph`` on ``net`` with every task pinned by ``mapping``.

    ``order`` (a precedence-safe task order) defaults to the bottom-level
    priority list.  Communications use BFS routes and basic insertion — the
    same engine as BA — so makespans are comparable across mappings.
    """
    missing = [t.tid for t in graph.tasks() if t.tid not in mapping]
    if missing:
        raise SchedulingError(f"mapping misses tasks {missing[:5]}")
    for tid, vid in mapping.items():
        if not graph.has_task(tid):
            raise SchedulingError(f"mapping references unknown task {tid}")
        if not net.vertex(vid).is_processor:
            raise SchedulingError(f"task {tid} mapped to non-processor {vid}")

    task_order = list(order) if order is not None else priority_list(graph)
    if sorted(task_order) != sorted(t.tid for t in graph.tasks()):
        raise SchedulingError("order is not a permutation of the graph's tasks")

    lstate = LinkScheduleState()
    pstate = ProcessorState()
    arrivals: dict[tuple[int, int], float] = {}

    for tid in task_order:
        proc = net.vertex(mapping[tid])
        t_dr = 0.0
        for e in sorted(graph.in_edges(tid), key=lambda e: e.src):
            src_pl = pstate.placement(e.src)
            if src_pl.processor == proc.vid:
                arrival = src_pl.finish
                lstate.record_route(e.key, ())
            else:
                # BFS routes memoize in the topology's shared route table.
                route = bfs_route(net, src_pl.processor, proc.vid)
                arrival = schedule_edge_basic(
                    lstate, e.key, route, e.cost, src_pl.finish, comm
                )
            arrivals[e.key] = arrival
            t_dr = max(t_dr, arrival)
        weight = graph.task(tid).weight
        pstate.place(tid, proc.vid, weight / proc.speed, t_dr, insertion=False)

    return Schedule(
        algorithm=algorithm,
        graph=graph,
        net=net,
        placements=pstate.placements(),
        edge_arrivals=arrivals,
        link_state=lstate,
        comm=comm,
    )
