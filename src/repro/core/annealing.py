"""Simulated-annealing mapping search under the contention model.

The paper's introduction cites simulated annealing [6] among the scheduling
families its heuristics compete with.  This scheduler closes that loop: it
searches over task->processor mappings, evaluating every candidate with the
*real* contention model (:func:`repro.core.mapping.simulate_mapping`, the
same BFS + basic-insertion engine as BA), so its result is directly
comparable with BA/OIHSA/BBSA makespans.

It is orders of magnitude slower than the list schedulers — that is the
point: it estimates how much headroom the one-pass heuristics leave on the
table.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.core.ba import BAScheduler
from repro.core.batch import BatchMappingEvaluator
from repro.core.incremental import IncrementalMappingEvaluator
from repro.core.kernelreg import KERNEL_CHOICES
from repro.core.mapping import simulate_mapping
from repro.core.schedule import Schedule
from repro.exceptions import SchedulingError
from repro.linksched.commmodel import CUT_THROUGH, CommModel
from repro.network.topology import NetworkTopology
from repro.network.validate import validate_topology
from repro.obs import OBS, ScheduleStats, diff_snapshots, diff_timings
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.validate import validate_graph
from repro.utils.rng import as_rng


class AnnealingScheduler:
    """Search task placements by simulated annealing.

    Parameters
    ----------
    iterations:
        Number of neighbour evaluations (each one full contention
        simulation).
    start_temp_factor:
        Initial temperature as a fraction of the seed makespan.
    cooling:
        Geometric cooling factor per iteration.
    seed_with_ba:
        Start from BA's mapping (default) instead of a random one.
    incremental:
        Evaluate candidates with a prefix-reusing evaluator (default)
        instead of a full ``simulate_mapping`` per candidate.  Results are
        bit-identical either way; ``False`` keeps the naive evaluator
        reachable as the differential reference (and ignores ``backend``).
    backend:
        Which prefix-reusing evaluator scores candidates: ``"array"``
        (default) for the flat-column
        :class:`~repro.core.batch.BatchMappingEvaluator`, ``"object"`` for
        the :class:`~repro.core.incremental.IncrementalMappingEvaluator` on
        the object substrate.  Makespans and schedules are bit-identical
        across backends (``tests/test_batch_equivalence.py``).
    kernel:
        Which implementation runs the array backend's hot loop:
        ``"auto"`` (default: the AOT-compiled extension when built, pure
        Python otherwise), ``"python"``, or ``"compiled"`` (raise when the
        extension is absent).  Ignored by the object backend.  Kernels are
        bit-identical (see :mod:`repro.core.kernelreg`), so this only
        changes wall time.
    """

    name = "annealing"

    def __init__(
        self,
        *,
        iterations: int = 300,
        start_temp_factor: float = 0.1,
        cooling: float = 0.99,
        seed_with_ba: bool = True,
        comm: CommModel = CUT_THROUGH,
        rng: int | np.random.Generator | None = 0,
        incremental: bool = True,
        backend: str = "array",
        kernel: str = "auto",
    ) -> None:
        if iterations < 1:
            raise SchedulingError(f"need at least one iteration, got {iterations}")
        if not 0 < cooling <= 1:
            raise SchedulingError(f"cooling must be in (0, 1], got {cooling}")
        if backend not in ("object", "array"):
            raise SchedulingError(
                f"unknown evaluation backend {backend!r}; choose 'object' or 'array'"
            )
        if kernel not in KERNEL_CHOICES:
            raise SchedulingError(
                f"unknown kernel {kernel!r}; expected one of {KERNEL_CHOICES}"
            )
        self.iterations = iterations
        self.start_temp_factor = start_temp_factor
        self.cooling = cooling
        self.seed_with_ba = seed_with_ba
        self.comm = comm
        self.rng = rng
        self.incremental = incremental
        self.backend = backend
        self.kernel = kernel

    def schedule(self, graph: TaskGraph, net: NetworkTopology) -> Schedule:
        validate_graph(graph)
        validate_topology(net)
        observing = OBS.on
        if observing:
            metrics_before = OBS.metrics.snapshot()
            timings_before = OBS.profiler.snapshot()
            event_mark = OBS.bus.mark()
        gen = as_rng(self.rng)
        procs = [p.vid for p in net.processors()]
        tasks = [t.tid for t in graph.tasks()]

        if self.seed_with_ba:
            seed_schedule = BAScheduler(comm=self.comm).schedule(graph, net)
            mapping = {
                tid: pl.processor for tid, pl in seed_schedule.placements.items()
            }
        else:
            mapping = {tid: int(gen.choice(procs)) for tid in tasks}

        evaluator: IncrementalMappingEvaluator | BatchMappingEvaluator | None = None
        evaluate: Callable[[dict[int, int]], float]
        if self.incremental:
            if self.backend == "array":
                evaluator = BatchMappingEvaluator(
                    graph, net, comm=self.comm, algorithm=self.name,
                    kernel=self.kernel,
                )
            else:
                evaluator = IncrementalMappingEvaluator(
                    graph, net, comm=self.comm, algorithm=self.name
                )
            evaluate = evaluator.evaluate
        else:

            def _full_eval(m: dict[int, int]) -> float:
                return simulate_mapping(
                    graph, net, m, comm=self.comm, algorithm=self.name
                ).makespan

            evaluate = _full_eval

        best_mapping = dict(mapping)
        best_cost = current_cost = evaluate(mapping)
        temp = max(best_cost * self.start_temp_factor, 1e-9)

        for _ in range(self.iterations):
            tid = int(gen.choice(tasks))
            old_proc = mapping[tid]
            choices = [p for p in procs if p != old_proc]
            if not choices:
                break
            mapping[tid] = int(gen.choice(choices))
            cand_cost = evaluate(mapping)
            delta = cand_cost - current_cost
            if delta <= 0 or gen.random() < math.exp(-delta / temp):
                current_cost = cand_cost
                if current_cost < best_cost:
                    best_cost = current_cost
                    best_mapping = dict(mapping)
            else:
                mapping[tid] = old_proc
            temp *= self.cooling

        if evaluator is not None:
            result = evaluator.schedule(best_mapping)
        else:
            result = simulate_mapping(
                graph, net, best_mapping, comm=self.comm, algorithm=self.name
            )
        if observing:
            # Same capture ContentionScheduler attaches: what this whole
            # search did, including every candidate evaluation.
            result.stats = ScheduleStats(
                metrics=diff_snapshots(metrics_before, OBS.metrics.snapshot()),
                timings=diff_timings(timings_before, OBS.profiler.snapshot()),
                events=OBS.bus.since(event_mark),
            )
        return result
