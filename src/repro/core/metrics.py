"""Schedule quality metrics.

``improvement_ratio`` is the paper's headline metric: the percentage
reduction in makespan of a candidate algorithm relative to the baseline
(BA), i.e. ``100 * (baseline - candidate) / baseline``.
"""

from __future__ import annotations

from repro.core.schedule import Schedule
from repro.exceptions import ReproError
from repro.taskgraph.priorities import critical_path_length


def makespan(schedule: Schedule) -> float:
    """Completion time of the last task."""
    return schedule.makespan


def improvement_ratio(baseline: float, candidate: float) -> float:
    """Percent makespan improvement of ``candidate`` over ``baseline``."""
    if baseline <= 0:
        raise ReproError(f"baseline makespan must be positive, got {baseline}")
    return 100.0 * (baseline - candidate) / baseline


def speedup(schedule: Schedule) -> float:
    """Sequential time on the fastest processor / parallel makespan."""
    fastest = max(p.speed for p in schedule.net.processors())
    sequential = schedule.graph.total_work() / fastest
    ms = schedule.makespan
    if ms <= 0:
        raise ReproError("cannot compute speedup of a zero-makespan schedule")
    return sequential / ms


def efficiency(schedule: Schedule) -> float:
    """Speedup divided by the number of processors."""
    return speedup(schedule) / len(schedule.net.processors())


def schedule_length_ratio(schedule: Schedule) -> float:
    """Makespan normalized by the graph's critical path on the fastest processor.

    Values close to 1 mean the schedule is near the communication-free lower
    bound; always >= the computation-only bound.
    """
    fastest = max(p.speed for p in schedule.net.processors())
    cp = critical_path_length(schedule.graph)
    if cp <= 0:
        raise ReproError("cannot compute SLR: zero critical path")
    return schedule.makespan / (cp / fastest)


def link_utilization(schedule: Schedule) -> dict[int, float]:
    """Fraction of the makespan each used link spends busy.

    For slot-based schedules this is busy time / makespan; for bandwidth
    schedules it is the time-integral of used bandwidth / makespan (so a
    half-bandwidth transfer counts half).
    """
    ms = schedule.makespan
    if ms <= 0:
        return {}
    out: dict[int, float] = {}
    if schedule.link_state is not None:
        for lid in schedule.link_state.used_links():
            busy = sum(s.duration for s in schedule.link_state.slots(lid))
            out[lid] = busy / ms
    elif schedule.bandwidth_state is not None:
        lids = {
            lid for r in schedule.bandwidth_state.routes().values() for lid in r
        }
        for lid in sorted(lids):
            prof = schedule.bandwidth_state.profile(lid)
            integral = sum((t1 - t0) * used for t0, t1, used in prof.segments)
            out[lid] = integral / ms
    elif schedule.packet_state is not None:
        for lid in schedule.packet_state.used_links():
            busy = sum(s.duration for s in schedule.packet_state.slots(lid))
            out[lid] = busy / ms
    return out


def comm_to_comp_time(schedule: Schedule) -> float:
    """Total booked link-busy time relative to total computation time."""
    total_comp = sum(p.finish - p.start for p in schedule.placements.values())
    if total_comp <= 0:
        raise ReproError("schedule has zero computation time")
    total_comm = 0.0
    if schedule.link_state is not None:
        for lid in schedule.link_state.used_links():
            total_comm += sum(s.duration for s in schedule.link_state.slots(lid))
    elif schedule.bandwidth_state is not None:
        lids = {
            lid for r in schedule.bandwidth_state.routes().values() for lid in r
        }
        for lid in sorted(lids):
            prof = schedule.bandwidth_state.profile(lid)
            total_comm += sum((t1 - t0) * used for t0, t1, used in prof.segments)
    elif schedule.packet_state is not None:
        for lid in schedule.packet_state.used_links():
            total_comm += sum(s.duration for s in schedule.packet_state.slots(lid))
    return total_comm / total_comp
