"""JSON serialization of complete schedules.

A schedule document embeds its task graph and topology (so it is
self-contained and replayable), the communication model, every task
placement, and the full link bookings — slot queues for BA/OIHSA, fluid
bookings for BBSA.  ``schedule_from_json(schedule_to_json(s))`` passes
``validate_schedule`` whenever ``s`` did.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.schedule import Schedule
from repro.exceptions import SerializationError
from repro.linksched.bandwidth import (
    BandwidthLinkState,
    Cumulative,
    TransferBooking,
    UsageSegment,
)
from repro.linksched.commmodel import CommModel
from repro.linksched.slots import TimeSlot
from repro.linksched.state import LinkScheduleState
from repro.network.io import topology_from_json, topology_to_json
from repro.procsched.state import TaskPlacement
from repro.taskgraph.io import graph_from_json, graph_to_json

_FORMAT = "repro.schedule/v1"


def _edge_key(e: Any) -> tuple[int, int]:
    src, dst = e
    return (int(src), int(dst))


def schedule_to_json(schedule: Schedule) -> str:
    doc: dict[str, Any] = {
        "format": _FORMAT,
        "algorithm": schedule.algorithm,
        "comm": {"mode": schedule.comm.mode, "hop_delay": schedule.comm.hop_delay},
        "graph": json.loads(graph_to_json(schedule.graph)),
        "network": json.loads(topology_to_json(schedule.net)),
        "placements": [
            {
                "task": pl.task,
                "processor": pl.processor,
                "start": pl.start,
                "finish": pl.finish,
            }
            for pl in schedule.placements.values()
        ],
        "edge_arrivals": [
            {"src": k[0], "dst": k[1], "arrival": v}
            for k, v in schedule.edge_arrivals.items()
        ],
    }
    if schedule.link_state is not None:
        state = schedule.link_state
        doc["link_state"] = {
            "routes": [
                {"src": k[0], "dst": k[1], "links": list(v)}
                for k, v in state.routes().items()
            ],
            "slots": {
                str(lid): [
                    {"src": s.edge[0], "dst": s.edge[1], "start": s.start, "finish": s.finish}
                    for s in state.slots(lid)
                ]
                for lid in state.used_links()
            },
        }
    if schedule.packet_state is not None:
        state = schedule.packet_state
        doc["packet_state"] = {
            "routes": [
                {"src": k[0], "dst": k[1], "links": list(v), "packets": state.packets_of(k)}
                for k, v in state.routes().items()
            ],
            "slots": {
                str(lid): [
                    {
                        "src": s.edge[0],
                        "dst": s.edge[1],
                        "packet": s.packet,
                        "start": s.start,
                        "finish": s.finish,
                    }
                    for s in state.slots(lid)
                ]
                for lid in state.used_links()
            },
        }
    if schedule.bandwidth_state is not None:
        state = schedule.bandwidth_state
        doc["bandwidth_state"] = {
            "routes": [
                {"src": k[0], "dst": k[1], "links": list(v)}
                for k, v in state.routes().items()
            ],
            "bookings": [
                {
                    "src": k[0],
                    "dst": k[1],
                    "hops": [
                        {
                            "lid": b.lid,
                            "arrival": b.arrival.points,
                            "departure": b.departure.points,
                            "usage": [
                                [u.start, u.finish, u.fraction] for u in b.usage
                            ],
                        }
                        for b in state.bookings_of(k)
                    ],
                }
                for k in state.routes()
                if state.bookings_of(k)
            ],
        }
    return json.dumps(doc, indent=2, sort_keys=True)


def schedule_from_json(text: str) -> Schedule:
    try:
        doc: dict[str, Any] = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("format") != _FORMAT:
        raise SerializationError(
            f"not a {_FORMAT} document "
            f"(format={doc.get('format') if isinstance(doc, dict) else None!r})"
        )
    try:
        graph = graph_from_json(json.dumps(doc["graph"]))
        net = topology_from_json(json.dumps(doc["network"]))
        comm = CommModel(doc["comm"]["mode"], float(doc["comm"]["hop_delay"]))
        placements = {
            int(p["task"]): TaskPlacement(
                int(p["task"]), int(p["processor"]), float(p["start"]), float(p["finish"])
            )
            for p in doc["placements"]
        }
        arrivals = {
            (int(a["src"]), int(a["dst"])): float(a["arrival"])
            for a in doc["edge_arrivals"]
        }
        link_state = None
        if "link_state" in doc:
            link_state = LinkScheduleState()
            for r in doc["link_state"]["routes"]:
                link_state.record_route(
                    (int(r["src"]), int(r["dst"])), tuple(int(l) for l in r["links"])
                )
            for lid_str, slots in doc["link_state"]["slots"].items():
                lid = int(lid_str)
                for i, s in enumerate(slots):
                    link_state.insert(
                        lid,
                        i,
                        TimeSlot(
                            (int(s["src"]), int(s["dst"])),
                            float(s["start"]),
                            float(s["finish"]),
                        ),
                    )
        packet_state = None
        if "packet_state" in doc:
            from repro.linksched.packets import PacketLinkState, PacketSlot

            packet_state = PacketLinkState()
            for r in doc["packet_state"]["routes"]:
                packet_state.restore_route(
                    (int(r["src"]), int(r["dst"])),
                    tuple(int(l) for l in r["links"]),
                    int(r["packets"]),
                )
            for lid_str, slots in doc["packet_state"]["slots"].items():
                packet_state.restore_slots(
                    int(lid_str),
                    [
                        PacketSlot(
                            (int(s["src"]), int(s["dst"])),
                            int(s["packet"]),
                            float(s["start"]),
                            float(s["finish"]),
                        )
                        for s in slots
                    ],
                )
        bandwidth_state = None
        if "bandwidth_state" in doc:
            bandwidth_state = BandwidthLinkState()
            for r in doc["bandwidth_state"]["routes"]:
                bandwidth_state.restore_route(
                    (int(r["src"]), int(r["dst"])), tuple(int(l) for l in r["links"])
                )
            for b in doc["bandwidth_state"]["bookings"]:
                key = (int(b["src"]), int(b["dst"]))
                hops = []
                for hop in b["hops"]:
                    usage = tuple(
                        UsageSegment(float(t0), float(t1), float(f))
                        for t0, t1, f in hop["usage"]
                    )
                    hops.append(
                        TransferBooking(
                            key,
                            int(hop["lid"]),
                            Cumulative([(float(t), float(v)) for t, v in hop["arrival"]]),
                            Cumulative([(float(t), float(v)) for t, v in hop["departure"]]),
                            usage,
                        )
                    )
                bandwidth_state.restore_booking(key, hops)
        return Schedule(
            algorithm=str(doc["algorithm"]),
            graph=graph,
            net=net,
            placements=placements,
            edge_arrivals=arrivals,
            link_state=link_state,
            bandwidth_state=bandwidth_state,
            packet_state=packet_state,
            comm=comm,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed schedule document: {exc}") from exc
