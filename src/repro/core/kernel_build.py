"""AOT build of the batch-evaluation kernel (``repro.core._kernel_c``).

Compiles the committed C translation of the hot loop (``_kernel.c``, the
twin of the pure-Python reference in :mod:`repro.core._kernel`) into an
optional extension module using cffi's out-of-line API mode, and writes a
provenance sidecar (``_kernel_c_meta.json``) recording the toolchain and
the source digests of *both* kernels so every BENCH record can say exactly
which arithmetic produced it.

The repo never requires this build: :mod:`repro.core.kernelreg` falls back
to the reference kernel whenever the extension is absent, and every test
passes either way.  Three ways to build:

- ``python -m repro.core.kernel_build`` — explicit build (what CI's
  compiled-kernel job runs); exits non-zero when cffi or a C compiler is
  missing.
- ``python -m repro.core.kernel_build --optional`` — best-effort: report
  and exit 0 when the toolchain is absent (for dev bootstrap scripts).
- ``REPRO_BUILD_KERNEL=1 pip install -e .[compiled]`` — the ``setup.py``
  hook delegates here via cffi's ``cffi_modules``.

The module-level ``ffibuilder`` is the cffi entry point the setup hook
references (``kernel_build.py:ffibuilder``).  Why cffi + C instead of the
mypyc/Cython route: those compilers are *not* part of the baked toolchain
this repo targets, while cffi + gcc are; the bit-identity contract is held
by the differential suite and checksum gates rather than by sharing source
text, and ``_kernel.c`` is kept a line-for-line translation of
``_kernel.py`` to keep the diff reviewable.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import subprocess
import sys
import sysconfig
from datetime import datetime, timezone
from pathlib import Path

_HERE = Path(__file__).resolve().parent
_SOURCE_C = _HERE / "_kernel.c"
_SOURCE_PY = _HERE / "_kernel.py"
_META = _HERE / "_kernel_c_meta.json"

#: Exported C API (mirrored by the definitions in ``_kernel.c``).
CDEF = """
typedef struct kstate kstate;
kstate *ks_new(int n, int n_procs, const double *exec_flat,
               const int *edge_src, const double *edge_cost,
               const int *edge_off, int cut_through, double hop);
void ks_free(kstate *ks);
int ks_set_plan(kstate *ks, int pair, int n_links, const int *lids,
                const double *speeds);
double ks_evaluate(kstate *ks, const int *cand, int *out_divergence,
                   int *out_missing);
int ks_max_lid(kstate *ks);
int ks_link_len(kstate *ks, int lid);
void ks_read_link(kstate *ks, int lid, double *starts_out,
                  double *finishes_out);
void ks_read_proc(kstate *ks, double *out);
double ks_makespan(kstate *ks);
"""


def _make_ffibuilder():  # type: ignore[no-untyped-def]  # cffi has no stubs
    """The cffi FFI builder for the kernel extension (lazy cffi import)."""
    from cffi import FFI

    builder = FFI()
    builder.cdef(CDEF)
    builder.set_source(
        "repro.core._kernel_c",
        _SOURCE_C.read_text(encoding="utf-8"),
        # Bit-identity requires conforming double arithmetic: default SSE2
        # on x86-64, explicitly no -ffast-math / unsafe reassociation.
        extra_compile_args=["-O2"],
    )
    return builder


try:  # referenced by setup.py's cffi_modules hook
    ffibuilder = _make_ffibuilder()
except ImportError:  # pragma: no cover - import-time probe only
    ffibuilder = None


def _sha256(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


def _compiler_banner() -> str:
    """First line of the configured C compiler's --version, best-effort."""
    cc = (sysconfig.get_config_var("CC") or "cc").split()[0]
    try:
        proc = subprocess.run(
            [cc, "--version"], capture_output=True, text=True, timeout=30
        )
    except OSError:
        return cc
    out = proc.stdout.splitlines()
    return out[0] if out else cc


def write_meta() -> dict[str, object]:
    """Write the build-provenance sidecar next to the extension."""
    import cffi

    meta: dict[str, object] = {
        "variant": "compiled",
        "builder": f"cffi {cffi.__version__}",
        "compiler": _compiler_banner(),
        "python": sys.version.split()[0],
        "platform": sysconfig.get_platform(),
        "source_sha256": _sha256(_SOURCE_C),
        "reference_sha256": _sha256(_SOURCE_PY),
        # Build tooling, not scheduling: the timestamp never reaches a
        # scheduling decision.
        "built_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),  # repro-lint: disable=DET003
    }
    _META.write_text(json.dumps(meta, indent=2, sort_keys=True) + "\n", "utf-8")
    return meta


def build(verbose: bool = False) -> Path:
    """Compile the extension in place (under ``src/``); returns the path."""
    if ffibuilder is None:
        raise RuntimeError("cffi is not installed; pip install -e .[compiled]")
    # "repro.core._kernel_c" resolves relative to tmpdir, so the built
    # module lands next to this file when tmpdir is the src/ root.
    src_root = _HERE.parent.parent
    out = ffibuilder.compile(tmpdir=str(src_root), verbose=verbose)
    write_meta()
    return Path(out)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.core.kernel_build",
        description="AOT-build the compiled batch-evaluation kernel.",
    )
    parser.add_argument(
        "--optional",
        action="store_true",
        help="exit 0 (with a notice) when the toolchain is unavailable",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)
    try:
        out = build(verbose=args.verbose)
    except Exception as exc:  # noqa: BLE001 - single CLI failure funnel
        if args.optional:
            print(f"kernel build skipped: {exc}")
            return 0
        print(f"kernel build failed: {exc}", file=sys.stderr)
        return 1
    print(f"built {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
