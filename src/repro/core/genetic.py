"""Genetic-algorithm mapping search under the contention model.

The second metaheuristic family the paper's introduction cites [5].  A
population of task->processor mappings evolves by tournament selection,
uniform crossover and point mutation; fitness is the *contention-model*
makespan from :func:`repro.core.mapping.simulate_mapping`, so results are
directly comparable with BA/OIHSA/BBSA.
"""

from __future__ import annotations

import numpy as np

from repro.core.ba import BAScheduler
from repro.core.batch import BatchMappingEvaluator
from repro.core.incremental import IncrementalMappingEvaluator
from repro.core.kernelreg import KERNEL_CHOICES
from repro.core.mapping import simulate_mapping
from repro.core.schedule import Schedule
from repro.exceptions import SchedulingError
from repro.linksched.commmodel import CUT_THROUGH, CommModel
from repro.network.topology import NetworkTopology
from repro.network.validate import validate_topology
from repro.obs import OBS, ScheduleStats, diff_snapshots, diff_timings
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.validate import validate_graph
from repro.utils.rng import as_rng


class GeneticScheduler:
    """Evolve task placements; fitness = contention-model makespan."""

    name = "genetic"

    def __init__(
        self,
        *,
        population: int = 16,
        generations: int = 20,
        mutation_rate: float = 0.05,
        elite: int = 2,
        seed_with_ba: bool = True,
        comm: CommModel = CUT_THROUGH,
        rng: int | np.random.Generator | None = 0,
        incremental: bool = True,
        backend: str = "array",
        kernel: str = "auto",
    ) -> None:
        if population < 2:
            raise SchedulingError(f"population must be >= 2, got {population}")
        if generations < 1:
            raise SchedulingError(f"generations must be >= 1, got {generations}")
        if not 0 <= mutation_rate <= 1:
            raise SchedulingError(f"mutation rate must be in [0, 1], got {mutation_rate}")
        if not 0 <= elite < population:
            raise SchedulingError(f"elite must be in [0, population), got {elite}")
        if backend not in ("object", "array"):
            raise SchedulingError(
                f"unknown evaluation backend {backend!r}; choose 'object' or 'array'"
            )
        if kernel not in KERNEL_CHOICES:
            raise SchedulingError(
                f"unknown kernel {kernel!r}; expected one of {KERNEL_CHOICES}"
            )
        self.population = population
        self.generations = generations
        self.mutation_rate = mutation_rate
        self.elite = elite
        self.seed_with_ba = seed_with_ba
        self.comm = comm
        self.rng = rng
        #: evaluate candidates incrementally (prefix-state reuse); ``False``
        #: keeps the full-resimulation reference path reachable (and ignores
        #: ``backend``)
        self.incremental = incremental
        #: prefix-reusing evaluator flavour: ``"array"`` (default) scores
        #: each generation as one batch on flat columns
        #: (:class:`~repro.core.batch.BatchMappingEvaluator`), ``"object"``
        #: scores candidates one-by-one on the object substrate.  Scores
        #: and schedules are bit-identical across backends.
        self.backend = backend
        #: array-backend hot-loop implementation (``auto``/``python``/
        #: ``compiled``); bit-identical by contract, wall-time only
        self.kernel = kernel

    def schedule(self, graph: TaskGraph, net: NetworkTopology) -> Schedule:
        validate_graph(graph)
        validate_topology(net)
        observing = OBS.on
        if observing:
            metrics_before = OBS.metrics.snapshot()
            timings_before = OBS.profiler.snapshot()
            event_mark = OBS.bus.mark()
        gen = as_rng(self.rng)
        procs = np.array([p.vid for p in net.processors()])
        tasks = [t.tid for t in graph.tasks()]
        n = len(tasks)

        def random_genome() -> np.ndarray:
            return gen.choice(procs, size=n)

        def to_mapping(genome: np.ndarray) -> dict[int, int]:
            return {tid: int(genome[i]) for i, tid in enumerate(tasks)}

        evaluator: IncrementalMappingEvaluator | BatchMappingEvaluator | None = None
        if self.incremental:
            if self.backend == "array":
                evaluator = BatchMappingEvaluator(
                    graph, net, comm=self.comm, algorithm=self.name,
                    kernel=self.kernel,
                )
            else:
                evaluator = IncrementalMappingEvaluator(
                    graph, net, comm=self.comm, algorithm=self.name
                )

        def fitness(genome: np.ndarray) -> float:
            if evaluator is not None:
                return evaluator.evaluate(to_mapping(genome))
            return simulate_mapping(
                graph, net, to_mapping(genome), comm=self.comm, algorithm=self.name
            ).makespan

        def score_pool(pool: list[np.ndarray]) -> np.ndarray:
            # The array backend scores each generation as one batch forking
            # from the shared prefix checkpoint; scores are pure functions
            # of the mappings, so the result array is bit-identical to the
            # one-by-one path (same floats, same order).
            if isinstance(evaluator, BatchMappingEvaluator):
                return np.array(
                    evaluator.evaluate_batch([to_mapping(g) for g in pool])
                )
            return np.array([fitness(g) for g in pool])

        pool = [random_genome() for _ in range(self.population)]
        if self.seed_with_ba:
            ba = BAScheduler(comm=self.comm).schedule(graph, net)
            pool[0] = np.array([ba.placements[tid].processor for tid in tasks])
        scores = score_pool(pool)

        for _ in range(self.generations):
            order = np.argsort(scores)
            pool = [pool[i] for i in order]
            scores = scores[order]
            next_pool = pool[: self.elite]
            while len(next_pool) < self.population:
                # Tournament selection of two parents.
                a, b = gen.integers(0, self.population, size=2)
                p1 = pool[min(a, b)]
                a, b = gen.integers(0, self.population, size=2)
                p2 = pool[min(a, b)]
                mask = gen.random(n) < 0.5
                child = np.where(mask, p1, p2)
                mut = gen.random(n) < self.mutation_rate
                if mut.any():
                    child = child.copy()
                    child[mut] = gen.choice(procs, size=int(mut.sum()))
                next_pool.append(child)
            pool = next_pool
            scores = score_pool(pool)

        best = pool[int(np.argmin(scores))]
        if evaluator is not None:
            result = evaluator.schedule(to_mapping(best))
        else:
            result = simulate_mapping(
                graph, net, to_mapping(best), comm=self.comm, algorithm=self.name
            )
        if observing:
            # Same capture ContentionScheduler attaches: what this whole
            # search did, including every candidate evaluation.
            result.stats = ScheduleStats(
                metrics=diff_snapshots(metrics_before, OBS.metrics.snapshot()),
                timings=diff_timings(timings_before, OBS.profiler.snapshot()),
                events=OBS.bus.since(event_mark),
            )
        return result
