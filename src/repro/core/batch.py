"""Batched array-native candidate evaluation for the mapping searches.

:class:`~repro.core.incremental.IncrementalMappingEvaluator` (the *object*
backend) made candidate scoring incremental: rewind to the divergence point,
re-simulate the suffix.  Profiling the annealing/genetic benchmarks after
that change showed the remaining time going not to the *amount* of work but
to its *representation*: every booking still built a ``TimeSlot``, updated a
``by_edge`` dict, bumped a version counter and appended a tagged undo tuple
— machinery the score-only pass never reads.

:class:`BatchMappingEvaluator` (the *array* backend) re-hosts the same
suffix re-simulation on a flat column store driven through a swappable
**kernel** (:mod:`repro.core._kernel`, selected by
:mod:`repro.core.kernelreg`):

- Tasks are **dense order positions**, processors dense indices; a candidate
  is a flat ``list[int]`` (``cand[pos] = processor index``), so the
  candidate itself is the placement lookup table — no per-candidate dicts.
- ``weight / speed`` divisions are precomputed per (position, processor)
  into one flat row-major table; in-edges are CSR ``(source position,
  cost)`` arrays fixed at construction.
- Routes resolve once per processor pair into a **route plan** installed
  into the kernel, so the inner loop touches no topology objects.  Plans
  stay lazy: the kernel reports the first unresolved pair it hits, this
  evaluator resolves the route (:func:`~repro.network.routing.bfs_route`)
  and retries.
- A booking is the object path's gap-search arithmetic verbatim (the
  bit-identity contract) followed by two column inserts and a journal
  append; a rewind pops journal entries.  The loop itself lives in the
  kernel: pure Python by default, or the AOT-built C extension when
  present (``kernel={auto,python,compiled}``; both are bit-identical).

**Batch semantics.**  :meth:`evaluate_batch` scores N candidates as one
batch forking from a shared prefix checkpoint — the generalization of the
object backend's 1-candidate divergence rewind.  Because every candidate's
score is a pure function of its mapping (simulation state is rewound, never
leaked between candidates), the batch may be evaluated in any order;
evaluating in **lexicographic dense-genome order** maximizes consecutive
shared prefixes (it is a depth-first walk of the candidates' prefix trie),
and results are returned in the caller's order.  A score cache keyed by the
dense genome short-circuits repeats (a genetic elite re-scored every
generation, an annealing move retried), counted as
``mapping.identical_skips``.

Counters (all under ``OBS.on``, accumulated per candidate — the array
backend pays no per-booking instrumentation): ``mapping.evaluations``,
``mapping.prefix_hits``, ``mapping.suffix_tasks_resimulated`` (shared with
the object backend), plus ``mapping.shared_prefix_tasks`` (order positions
reused from the checkpoint), ``mapping.batch_evaluations`` /
``mapping.batch_candidates`` (every scoring request: one increment per
:meth:`evaluate_batch` with its population size, and one batch of size 1
per single-candidate :meth:`evaluate` — so ``batch_candidates /
batch_evaluations`` is the true mean batch size across a search) and
``mapping.identical_skips``.

Scoring is bit-identical to ``simulate_mapping`` — same divisions, same gap
arithmetic, same ``max`` reductions — proven slot-by-slot by
``tests/test_batch_equivalence.py``.  Materializing a full
:class:`~repro.core.schedule.Schedule` (:meth:`BatchMappingEvaluator.schedule`)
delegates to the object path: the columns carry no edge identities or
routes, and the winner is scheduled once per search.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core._kernel import (
    KernelProtocol,
    LinkStateView,
    ProcStateView,
)
from repro.core.kernelreg import KernelInfo, resolve_kernel
from repro.core.mapping import simulate_mapping
from repro.core.schedule import Schedule
from repro.exceptions import SchedulingError
from repro.linksched.commmodel import CUT_THROUGH, CommModel
from repro.network.routing import bfs_route
from repro.network.topology import NetworkTopology
from repro.obs import OBS
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.priorities import priority_list
from repro.types import TaskId, VertexId

#: Score-cache keys: packed bytes for <=256 processors, tuples beyond.
_CacheKey = bytes | tuple[int, ...]

#: Distinct candidates remembered before the score cache resets.  Search
#: runs see a few hundred candidates; the cap only guards unbounded streams.
_CACHE_LIMIT = 1 << 16


class BatchMappingEvaluator:
    """Score task->processor mappings on flat columns, alone or in batches.

    Construction fixes the graph, network, communication model and task
    order (defaulting to the bottom-level priority list, like
    ``simulate_mapping``), and resolves the scoring kernel
    (``kernel={auto,python,compiled}``; see :mod:`repro.core.kernelreg`).
    :meth:`evaluate` scores one candidate, :meth:`evaluate_batch` a
    population, :meth:`schedule` materializes the chosen mapping through
    the object path.  The evaluator owns live column state shared across
    calls, so it must not be used concurrently.

    Like the object backend, per-candidate validation is lazy: a mapping
    that misses a task or maps one to a non-processor raises when first
    converted; extra keys for tasks outside the graph are ignored.
    """

    #: reported by ``repro profile`` / ``--stats`` (satellite of ISSUE 8)
    backend = "array"

    def __init__(
        self,
        graph: TaskGraph,
        net: NetworkTopology,
        *,
        order: Sequence[TaskId] | None = None,
        comm: CommModel = CUT_THROUGH,
        algorithm: str = "mapping",
        kernel: str = "auto",
    ) -> None:
        task_order = list(order) if order is not None else priority_list(graph)
        if sorted(task_order) != sorted(t.tid for t in graph.tasks()):
            raise SchedulingError("order is not a permutation of the graph's tasks")
        self._graph = graph
        self._net = net
        self._comm = comm
        self._algorithm = algorithm
        self._order = task_order
        procs = list(net.processors())
        self._proc_vids: list[VertexId] = [p.vid for p in procs]
        self._vid_to_pidx: dict[VertexId, int] = {
            p.vid: i for i, p in enumerate(procs)
        }
        n_procs = len(procs)
        self._n_procs = n_procs
        n = len(task_order)
        self._n = n
        pos_of = {tid: i for i, tid in enumerate(task_order)}
        # Static per-position facts.  ``exec_flat[pos * P + pidx]`` keeps the
        # object path's ``weight / speed`` division (never rewritten as a
        # multiplication by the inverse — that rounds differently).  In-edges
        # are CSR arrays: position ``pos``'s predecessors (sorted by source
        # task id) live at ``edge_src/edge_cost[edge_off[pos] :
        # edge_off[pos + 1]]``.
        exec_flat: list[float] = []
        edge_src: list[int] = []
        edge_cost: list[float] = []
        edge_off: list[int] = [0]
        for tid in task_order:
            weight = graph.task(tid).weight
            exec_flat.extend(weight / p.speed for p in procs)
            for e in sorted(graph.in_edges(tid), key=lambda e: e.src):
                if e.cost < 0:
                    raise SchedulingError(f"negative communication cost {e.cost}")
                edge_src.append(pos_of[e.src])
                edge_cost.append(e.cost)
            edge_off.append(len(edge_src))
        factory, info = resolve_kernel(kernel)
        self.kernel_info: KernelInfo = info
        #: the active kernel variant ("python" or "compiled"), for
        #: ``repro profile`` / ``--stats`` / ledger fingerprints
        self.kernel: str = info.active
        self._k: KernelProtocol = factory(
            n,
            n_procs,
            exec_flat,
            edge_src,
            edge_cost,
            edge_off,
            comm.mode == "cut-through",
            comm.hop_delay,
        )
        #: reusable mapping->dense conversion buffer
        self._buf: list[int] = [0] * n
        self._scores: dict[_CacheKey, float] = {}
        self._pack_keys = n_procs <= 256

    # -- internals -----------------------------------------------------------

    def _resolve_plan(self, pair: int) -> None:
        """Resolve (once) a processor pair's route and install it."""
        src_pidx, dst_pidx = divmod(pair, self._n_procs)
        route = bfs_route(
            self._net, self._proc_vids[src_pidx], self._proc_vids[dst_pidx]
        )
        lids = [link.lid for link in route]
        speeds = [link.speed for link in route]
        self._k.set_plan(pair, lids, speeds)

    def dense(self, mapping: Mapping[TaskId, VertexId]) -> list[int]:
        """``mapping`` as a dense genome: processor index per order position."""
        vid_to_pidx = self._vid_to_pidx
        try:
            return [vid_to_pidx[mapping[tid]] for tid in self._order]
        except KeyError:
            for tid in self._order:
                if tid not in mapping:
                    raise SchedulingError(f"mapping misses tasks [{tid}]") from None
                if mapping[tid] not in vid_to_pidx:
                    raise SchedulingError(
                        f"task {tid} mapped to non-processor {mapping[tid]}"
                    ) from None
            raise  # pragma: no cover - unreachable: one branch above fired

    # -- public API ----------------------------------------------------------

    def evaluate_dense(self, cand: list[int]) -> float:
        """Makespan of a dense genome — bit-identical to the object path.

        Rewinds the live columns to the longest prefix shared with the
        previously evaluated genome and re-simulates only the suffix (both
        inside the kernel).  Previously seen genomes return their cached
        score without touching the columns at all.  A kernel stop on an
        unresolved route plan resolves the route here and retries; the
        retry resumes after the already-simulated prefix, so the counters
        below still reflect the first call's true divergence point.
        """
        key: _CacheKey = bytes(cand) if self._pack_keys else tuple(cand)
        scores = self._scores
        hit = scores.get(key)
        if hit is not None:
            if OBS.on:
                OBS.metrics.counter("mapping.evaluations").inc()
                OBS.metrics.counter("mapping.identical_skips").inc()
            return hit
        span, divergence, missing = self._k.evaluate(cand)
        while missing >= 0:
            self._resolve_plan(missing)
            span, _retry_div, missing = self._k.evaluate(cand)
        if OBS.on:
            metrics = OBS.metrics
            metrics.counter("mapping.evaluations").inc()
            if divergence:
                metrics.counter("mapping.prefix_hits").inc()
                metrics.counter("mapping.shared_prefix_tasks").inc(divergence)
            resimulated = self._n - divergence
            if resimulated:
                metrics.counter("mapping.suffix_tasks_resimulated").inc(resimulated)
        if len(scores) >= _CACHE_LIMIT:
            scores.clear()
        scores[key] = span
        return span

    def evaluate(self, mapping: Mapping[TaskId, VertexId]) -> float:
        """Makespan of one candidate mapping (see :meth:`evaluate_dense`).

        Counted as a batch of size 1 (``mapping.batch_evaluations`` /
        ``mapping.batch_candidates``), so single-candidate searches like
        annealing report a truthful mean batch size instead of 0.
        """
        if OBS.on:
            OBS.metrics.counter("mapping.batch_evaluations").inc()
            OBS.metrics.counter("mapping.batch_candidates").inc()
        buf = self._buf
        vid_to_pidx = self._vid_to_pidx
        order = self._order
        try:
            for i in range(self._n):
                buf[i] = vid_to_pidx[mapping[order[i]]]
        except KeyError:
            self.dense(mapping)  # raises with the precise diagnosis
            raise  # pragma: no cover - unreachable: dense() always raises
        return self.evaluate_dense(buf)

    def evaluate_batch(
        self, mappings: Sequence[Mapping[TaskId, VertexId]]
    ) -> list[float]:
        """Score a whole candidate population; results in caller order.

        The batch forks from the live shared-prefix checkpoint: candidates
        are evaluated in lexicographic dense-genome order (a depth-first
        prefix-trie walk, so consecutive candidates share the longest
        possible checkpoints), and each score is a pure function of its
        mapping, so the reordering is unobservable in the results.
        """
        genomes = [self.dense(m) for m in mappings]
        if OBS.on:
            OBS.metrics.counter("mapping.batch_evaluations").inc()
            OBS.metrics.counter("mapping.batch_candidates").inc(len(genomes))
        by_prefix = sorted(range(len(genomes)), key=genomes.__getitem__)
        out = [0.0] * len(genomes)
        for k in by_prefix:
            out[k] = self.evaluate_dense(genomes[k])
        return out

    def schedule(self, mapping: Mapping[TaskId, VertexId]) -> Schedule:
        """Full :class:`~repro.core.schedule.Schedule` for ``mapping``.

        Delegates to :func:`~repro.core.mapping.simulate_mapping` — the
        columns store no edge identities or routes, and the search
        materializes exactly one winner.  Unlike the scoring path this
        validates the mapping eagerly, like ``simulate_mapping`` itself.
        """
        return simulate_mapping(
            self._graph,
            self._net,
            mapping,
            order=self._order,
            comm=self._comm,
            algorithm=self._algorithm,
        )

    # -- introspection (differential tests) ----------------------------------

    @property
    def link_state(self) -> LinkStateView:
        """The live link columns (read-only use: differential tests)."""
        return self._k.link_state

    @property
    def proc_state(self) -> ProcStateView:
        """The live processor column (read-only use: differential tests)."""
        return self._k.proc_state
