"""Batched array-native candidate evaluation for the mapping searches.

:class:`~repro.core.incremental.IncrementalMappingEvaluator` (the *object*
backend) made candidate scoring incremental: rewind to the divergence point,
re-simulate the suffix.  Profiling the annealing/genetic benchmarks after
that change showed the remaining time going not to the *amount* of work but
to its *representation*: every booking still built a ``TimeSlot``, updated a
``by_edge`` dict, bumped a version counter and appended a tagged undo tuple
— machinery the score-only pass never reads.

:class:`BatchMappingEvaluator` (the *array* backend) re-hosts the same
suffix re-simulation on the flat column store of
:mod:`repro.linksched.arraystate`:

- Tasks are **dense order positions**, processors dense indices; a candidate
  is a flat ``list[int]`` (``cand[pos] = processor index``), so the
  candidate itself is the placement lookup table — no per-candidate dicts.
- ``weight / speed`` divisions are precomputed per (position, processor)
  into one flat row-major table; in-edges are ``(source position, cost)``
  pairs fixed at construction.
- Routes resolve once per processor pair into a **route plan**: the per-link
  ``(starts, finishes, speed)`` column triples, so the inner loop touches no
  topology objects.
- A booking is the object path's gap-search arithmetic verbatim (the
  bit-identity contract) followed by two ``list.insert`` calls and a journal
  append; a rewind pops journal entries.

**Batch semantics.**  :meth:`evaluate_batch` scores N candidates as one
batch forking from a shared prefix checkpoint — the generalization of the
object backend's 1-candidate divergence rewind.  Because every candidate's
score is a pure function of its mapping (simulation state is rewound, never
leaked between candidates), the batch may be evaluated in any order;
evaluating in **lexicographic dense-genome order** maximizes consecutive
shared prefixes (it is a depth-first walk of the candidates' prefix trie),
and results are returned in the caller's order.  A score cache keyed by the
dense genome short-circuits repeats (a genetic elite re-scored every
generation, an annealing move retried), counted as
``mapping.identical_skips``.

Counters (all under ``OBS.on``, accumulated per candidate — the array
backend pays no per-booking instrumentation): ``mapping.evaluations``,
``mapping.prefix_hits``, ``mapping.suffix_tasks_resimulated`` (shared with
the object backend), plus ``mapping.shared_prefix_tasks`` (order positions
reused from the checkpoint), ``mapping.batch_evaluations`` /
``mapping.batch_candidates`` (batch count and total size) and
``mapping.identical_skips``.

Scoring is bit-identical to ``simulate_mapping`` — same divisions, same gap
arithmetic, same ``max`` reductions — proven slot-by-slot by
``tests/test_batch_equivalence.py``.  Materializing a full
:class:`~repro.core.schedule.Schedule` (:meth:`BatchMappingEvaluator.schedule`)
delegates to the object path: the columns carry no edge identities or
routes, and the winner is scheduled once per search.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Mapping, Sequence

from repro.core.mapping import simulate_mapping
from repro.core.schedule import Schedule
from repro.exceptions import SchedulingError
from repro.linksched.arraystate import ArrayLinkState, ArrayProcState
from repro.linksched.commmodel import CUT_THROUGH, CommModel
from repro.network.routing import bfs_route
from repro.network.topology import NetworkTopology
from repro.obs import OBS
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.priorities import priority_list
from repro.types import TaskId, VertexId

#: One route link's scoring view: its two booking columns plus speed.
_LinkPlan = tuple[list[float], list[float], float]

#: Score-cache keys: packed bytes for <=256 processors, tuples beyond.
_CacheKey = bytes | tuple[int, ...]

#: Distinct candidates remembered before the score cache resets.  Search
#: runs see a few hundred candidates; the cap only guards unbounded streams.
_CACHE_LIMIT = 1 << 16


class BatchMappingEvaluator:
    """Score task->processor mappings on flat columns, alone or in batches.

    Construction fixes the graph, network, communication model and task
    order (defaulting to the bottom-level priority list, like
    ``simulate_mapping``).  :meth:`evaluate` scores one candidate,
    :meth:`evaluate_batch` a population, :meth:`schedule` materializes the
    chosen mapping through the object path.  The evaluator owns live column
    state shared across calls, so it must not be used concurrently.

    Like the object backend, per-candidate validation is lazy: a mapping
    that misses a task or maps one to a non-processor raises when first
    converted; extra keys for tasks outside the graph are ignored.
    """

    #: reported by ``repro profile`` / ``--stats`` (satellite of ISSUE 8)
    backend = "array"

    def __init__(
        self,
        graph: TaskGraph,
        net: NetworkTopology,
        *,
        order: Sequence[TaskId] | None = None,
        comm: CommModel = CUT_THROUGH,
        algorithm: str = "mapping",
    ) -> None:
        task_order = list(order) if order is not None else priority_list(graph)
        if sorted(task_order) != sorted(t.tid for t in graph.tasks()):
            raise SchedulingError("order is not a permutation of the graph's tasks")
        self._graph = graph
        self._net = net
        self._comm = comm
        self._algorithm = algorithm
        self._order = task_order
        procs = list(net.processors())
        self._proc_vids: list[VertexId] = [p.vid for p in procs]
        self._vid_to_pidx: dict[VertexId, int] = {
            p.vid: i for i, p in enumerate(procs)
        }
        n_procs = len(procs)
        self._n_procs = n_procs
        n = len(task_order)
        self._n = n
        pos_of = {tid: i for i, tid in enumerate(task_order)}
        # Static per-position facts.  ``exec_flat[pos * P + pidx]`` keeps the
        # object path's ``weight / speed`` division (never rewritten as a
        # multiplication by the inverse — that rounds differently).
        exec_flat: list[float] = []
        in_edges: list[tuple[tuple[int, float], ...]] = []
        for tid in task_order:
            weight = graph.task(tid).weight
            exec_flat.extend(weight / p.speed for p in procs)
            edges = tuple(
                (pos_of[e.src], e.cost)
                for e in sorted(graph.in_edges(tid), key=lambda e: e.src)
            )
            for _src_pos, cost in edges:
                if cost < 0:
                    raise SchedulingError(f"negative communication cost {cost}")
            in_edges.append(edges)
        self._exec_flat = exec_flat
        self._in_edges = in_edges
        #: route plans per ``src_pidx * P + dst_pidx``, resolved lazily
        self._route_plans: list[list[_LinkPlan] | None] = [None] * (n_procs * n_procs)
        self._lstate = ArrayLinkState()
        self._pstate = ArrayProcState(n_procs)
        #: finish time per order position of the last simulated candidate.
        #: Overwritten in order during re-simulation, so positions >= the
        #: divergence point are always rewritten before being read — no
        #: journal needed.
        self._task_finish: list[float] = [0.0] * n
        #: dense processor index applied at each simulated order position
        self._applied: list[int] = []
        #: link-journal snapshot captured just before each position; the
        #: processor journal needs no marks — it holds exactly one entry per
        #: position, so its mark at position ``p`` is ``p``.
        self._lmarks: list[int] = []
        #: reusable mapping->dense conversion buffer
        self._buf: list[int] = [0] * n
        self._scores: dict[_CacheKey, float] = {}
        self._pack_keys = n_procs <= 256

    # -- internals -----------------------------------------------------------

    def _route_plan(self, src_pidx: int, dst_pidx: int) -> list[_LinkPlan]:
        """Resolve (once) a processor pair's route into column triples."""
        route = bfs_route(
            self._net, self._proc_vids[src_pidx], self._proc_vids[dst_pidx]
        )
        columns = self._lstate.columns
        plan: list[_LinkPlan] = []
        for link in route:
            starts, finishes = columns(link.lid)
            plan.append((starts, finishes, link.speed))
        self._route_plans[src_pidx * self._n_procs + dst_pidx] = plan
        return plan

    def dense(self, mapping: Mapping[TaskId, VertexId]) -> list[int]:
        """``mapping`` as a dense genome: processor index per order position."""
        vid_to_pidx = self._vid_to_pidx
        try:
            return [vid_to_pidx[mapping[tid]] for tid in self._order]
        except KeyError:
            for tid in self._order:
                if tid not in mapping:
                    raise SchedulingError(f"mapping misses tasks [{tid}]") from None
                if mapping[tid] not in vid_to_pidx:
                    raise SchedulingError(
                        f"task {tid} mapped to non-processor {mapping[tid]}"
                    ) from None
            raise  # pragma: no cover - unreachable: one branch above fired

    def _resimulate(self, cand: list[int], start: int) -> None:
        """Simulate order positions ``start..n`` onto the columns.

        The booking arithmetic is ``LinkScheduleState.book_edge_basic``
        verbatim — inlined bisect gap search, ``cost / speed`` durations,
        cut-through vs store-and-forward constraint propagation — minus the
        object bookkeeping.  Positions ``< start`` must already agree with
        ``cand`` (the caller rewound to the shared prefix).
        """
        n = self._n
        n_procs = self._n_procs
        in_edges = self._in_edges
        exec_flat = self._exec_flat
        task_finish = self._task_finish
        route_plans = self._route_plans
        lstate = self._lstate
        journal_starts = lstate.journal_starts
        journal_finishes = lstate.journal_finishes
        journal_index = lstate.journal_index
        lmarks = self._lmarks
        pstate = self._pstate
        proc_finish = pstate.finish
        journal_proc = pstate.journal_proc
        journal_old = pstate.journal_finish
        applied = self._applied
        comm = self._comm
        cut_through = comm.mode == "cut-through"
        hop = comm.hop_delay
        for pos in range(start, n):
            pidx = cand[pos]
            lmarks.append(len(journal_index))
            applied.append(pidx)
            t_dr = 0.0
            for src_pos, cost in in_edges[pos]:
                ready = task_finish[src_pos]
                src_pidx = cand[src_pos]
                if src_pidx == pidx or cost <= 0.0:
                    if ready > t_dr:
                        t_dr = ready
                    continue
                plan = route_plans[src_pidx * n_procs + pidx]
                if plan is None:
                    plan = self._route_plan(src_pidx, pidx)
                est = ready
                min_finish = 0.0
                arrival = ready
                # repro-lint note: iterating the *plan* (one entry per route
                # link) is the per-link walk of the reference algorithm; the
                # column arrays themselves are only touched via bisect and
                # point inserts below.
                for starts, finishes, speed in plan:
                    duration = cost / speed
                    floor = min_finish - duration
                    lo = est if est >= floor else floor
                    n_booked = len(starts)
                    i = bisect_left(starts, lo + duration)
                    prev_finish = finishes[i - 1] if i > 0 else 0.0
                    while True:
                        slot_start = prev_finish if prev_finish > lo else lo
                        arrival = slot_start + duration
                        if i >= n_booked or arrival <= starts[i]:
                            break
                        prev_finish = finishes[i]
                        i += 1
                    starts.insert(i, slot_start)
                    finishes.insert(i, arrival)
                    journal_starts.append(starts)
                    journal_finishes.append(finishes)
                    journal_index.append(i)
                    if cut_through:
                        est = slot_start + hop
                        min_finish = arrival + hop
                    else:
                        est = arrival + hop
                        min_finish = 0.0
                if arrival > t_dr:
                    t_dr = arrival
            last_finish = proc_finish[pidx]
            journal_proc.append(pidx)
            journal_old.append(last_finish)
            task_start = last_finish if last_finish > t_dr else t_dr
            finish = task_start + exec_flat[pos * n_procs + pidx]
            proc_finish[pidx] = finish
            task_finish[pos] = finish

    # -- public API ----------------------------------------------------------

    def evaluate_dense(self, cand: list[int]) -> float:
        """Makespan of a dense genome — bit-identical to the object path.

        Rewinds the live columns to the longest prefix shared with the
        previously evaluated genome and re-simulates only the suffix.
        Previously seen genomes return their cached score without touching
        the columns at all.
        """
        key: _CacheKey = bytes(cand) if self._pack_keys else tuple(cand)
        scores = self._scores
        hit = scores.get(key)
        if hit is not None:
            if OBS.on:
                OBS.metrics.counter("mapping.evaluations").inc()
                OBS.metrics.counter("mapping.identical_skips").inc()
            return hit
        applied = self._applied
        divergence = len(applied)
        for pos in range(divergence):
            if cand[pos] != applied[pos]:
                divergence = pos
                break
        if divergence < len(applied):
            self._lstate.restore(self._lmarks[divergence])
            self._pstate.restore(divergence)
            del self._lmarks[divergence:]
            del applied[divergence:]
        if OBS.on:
            metrics = OBS.metrics
            metrics.counter("mapping.evaluations").inc()
            if divergence:
                metrics.counter("mapping.prefix_hits").inc()
                metrics.counter("mapping.shared_prefix_tasks").inc(divergence)
            resimulated = self._n - divergence
            if resimulated:
                metrics.counter("mapping.suffix_tasks_resimulated").inc(resimulated)
        self._resimulate(cand, divergence)
        span = self._pstate.makespan()
        if len(scores) >= _CACHE_LIMIT:
            scores.clear()
        scores[key] = span
        return span

    def evaluate(self, mapping: Mapping[TaskId, VertexId]) -> float:
        """Makespan of one candidate mapping (see :meth:`evaluate_dense`)."""
        buf = self._buf
        vid_to_pidx = self._vid_to_pidx
        order = self._order
        try:
            for i in range(self._n):
                buf[i] = vid_to_pidx[mapping[order[i]]]
        except KeyError:
            self.dense(mapping)  # raises with the precise diagnosis
            raise  # pragma: no cover - unreachable: dense() always raises
        return self.evaluate_dense(buf)

    def evaluate_batch(
        self, mappings: Sequence[Mapping[TaskId, VertexId]]
    ) -> list[float]:
        """Score a whole candidate population; results in caller order.

        The batch forks from the live shared-prefix checkpoint: candidates
        are evaluated in lexicographic dense-genome order (a depth-first
        prefix-trie walk, so consecutive candidates share the longest
        possible checkpoints), and each score is a pure function of its
        mapping, so the reordering is unobservable in the results.
        """
        genomes = [self.dense(m) for m in mappings]
        if OBS.on:
            OBS.metrics.counter("mapping.batch_evaluations").inc()
            OBS.metrics.counter("mapping.batch_candidates").inc(len(genomes))
        by_prefix = sorted(range(len(genomes)), key=genomes.__getitem__)
        out = [0.0] * len(genomes)
        for k in by_prefix:
            out[k] = self.evaluate_dense(genomes[k])
        return out

    def schedule(self, mapping: Mapping[TaskId, VertexId]) -> Schedule:
        """Full :class:`~repro.core.schedule.Schedule` for ``mapping``.

        Delegates to :func:`~repro.core.mapping.simulate_mapping` — the
        columns store no edge identities or routes, and the search
        materializes exactly one winner.  Unlike the scoring path this
        validates the mapping eagerly, like ``simulate_mapping`` itself.
        """
        return simulate_mapping(
            self._graph,
            self._net,
            mapping,
            order=self._order,
            comm=self._comm,
            algorithm=self._algorithm,
        )

    # -- introspection (differential tests) ----------------------------------

    @property
    def link_state(self) -> ArrayLinkState:
        """The live link columns (read-only use: differential tests)."""
        return self._lstate

    @property
    def proc_state(self) -> ArrayProcState:
        """The live processor column (read-only use: differential tests)."""
        return self._pstate
