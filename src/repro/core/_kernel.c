/* C translation of repro/core/_kernel.py — the batch-evaluation hot loop.
 *
 * This file is the compiled twin of PyKernel: the same state machine
 * (per-link parallel start/finish columns with a positional undo journal,
 * dense processor finish column, divergence rewind + suffix re-simulation)
 * performing the exact same IEEE-754 double operations in the same order.
 * CPython floats are C doubles, so compiling with a standards-conforming
 * toolchain (no -ffast-math, SSE2 arithmetic — the x86-64 default) keeps
 * every makespan bit-identical to the reference; the differential suite in
 * tests/test_batch_equivalence.py and the scores_checksum CI gates enforce
 * that contract.
 *
 * Built into the optional extension repro.core._kernel_c by
 * repro/core/kernel_build.py (cffi, out-of-line API mode) and wrapped by
 * repro/core/_kernel_cwrap.CKernel.  Keep this file in lockstep with the
 * reference: any arithmetic change lands in _kernel.py first, here second,
 * never in one place only.
 */

#include <stdlib.h>
#include <string.h>

/* One link's bookings: parallel (starts, finishes) columns sorted by
 * start time, plus the shared length/capacity. */
typedef struct {
    double *starts;
    double *finishes;
    int n;
    int cap;
} kcol;

typedef struct kstate {
    int n;              /* order positions (tasks) */
    int n_procs;
    int cut_through;
    double hop;
    double *exec_flat;  /* n * n_procs, row-major weight/speed */
    int *edge_src;      /* CSR in-edges: source position per edge */
    double *edge_cost;  /* CSR in-edges: communication cost per edge */
    int *edge_off;      /* n + 1 offsets into edge_src/edge_cost */
    double *task_finish; /* n: finish time of the last simulated candidate */
    double *proc_finish; /* n_procs: running finish per processor */
    kcol *cols;         /* indexed directly by link id */
    int n_cols;
    /* Route plans, pooled: pair -> (offset, length) into plan_link/speed;
     * plan_off[pair] < 0 means unresolved (the caller installs lazily). */
    int *plan_off;
    int *plan_len;
    int *plan_link;
    double *plan_speed;
    int plan_n;
    int plan_cap;
    /* Link journal: (link id, insert index) per booking, newest last. */
    int *jl_link;
    int *jl_idx;
    int jl_n;
    int jl_cap;
    /* Processor journal: exactly one (proc, old finish) per position. */
    int *jp_proc;
    double *jp_fin;
    int jp_n;
    /* Applied genome prefix + link-journal mark per applied position. */
    int *applied;
    int *lmarks;
    int n_applied;
} kstate;

void ks_free(kstate *ks);  /* used by ks_new's failure path */

/* -- growable-buffer helpers ---------------------------------------------- */

static int grow_i(int **buf, int *cap, int need)
{
    int ncap;
    int *nb;
    if (need <= *cap)
        return 0;
    ncap = *cap > 0 ? *cap : 16;
    while (ncap < need)
        ncap *= 2;
    nb = (int *)realloc(*buf, (size_t)ncap * sizeof(int));
    if (nb == NULL)
        return -1;
    *buf = nb;
    *cap = ncap;
    return 0;
}

static int col_reserve(kcol *c, int need)
{
    int ncap;
    double *nb;
    if (need <= c->cap)
        return 0;
    ncap = c->cap > 0 ? c->cap : 8;
    while (ncap < need)
        ncap *= 2;
    nb = (double *)realloc(c->starts, (size_t)ncap * sizeof(double));
    if (nb == NULL)
        return -1;
    c->starts = nb;
    nb = (double *)realloc(c->finishes, (size_t)ncap * sizeof(double));
    if (nb == NULL)
        return -1;
    c->finishes = nb;
    c->cap = ncap;
    return 0;
}

/* Grow the link-column directory to cover lid (zero-filled new slots). */
static int cols_cover(kstate *ks, int lid)
{
    kcol *nc;
    if (lid < ks->n_cols)
        return 0;
    nc = (kcol *)realloc(ks->cols, (size_t)(lid + 1) * sizeof(kcol));
    if (nc == NULL)
        return -1;
    memset(nc + ks->n_cols, 0, (size_t)(lid + 1 - ks->n_cols) * sizeof(kcol));
    ks->cols = nc;
    ks->n_cols = lid + 1;
    return 0;
}

/* -- lifecycle ------------------------------------------------------------- */

kstate *ks_new(int n, int n_procs, const double *exec_flat,
               const int *edge_src, const double *edge_cost,
               const int *edge_off, int cut_through, double hop)
{
    kstate *ks;
    int n_edges, pairs, i;
    ks = (kstate *)calloc(1, sizeof(kstate));
    if (ks == NULL)
        return NULL;
    ks->n = n;
    ks->n_procs = n_procs;
    ks->cut_through = cut_through;
    ks->hop = hop;
    n_edges = edge_off[n];
    pairs = n_procs * n_procs;
    ks->exec_flat = (double *)malloc((size_t)(n * n_procs > 0 ? n * n_procs : 1) * sizeof(double));
    ks->edge_src = (int *)malloc((size_t)(n_edges > 0 ? n_edges : 1) * sizeof(int));
    ks->edge_cost = (double *)malloc((size_t)(n_edges > 0 ? n_edges : 1) * sizeof(double));
    ks->edge_off = (int *)malloc((size_t)(n + 1) * sizeof(int));
    ks->task_finish = (double *)calloc((size_t)(n > 0 ? n : 1), sizeof(double));
    ks->proc_finish = (double *)calloc((size_t)n_procs, sizeof(double));
    ks->plan_off = (int *)malloc((size_t)pairs * sizeof(int));
    ks->plan_len = (int *)malloc((size_t)pairs * sizeof(int));
    ks->jp_proc = (int *)malloc((size_t)(n > 0 ? n : 1) * sizeof(int));
    ks->jp_fin = (double *)malloc((size_t)(n > 0 ? n : 1) * sizeof(double));
    ks->applied = (int *)malloc((size_t)(n > 0 ? n : 1) * sizeof(int));
    ks->lmarks = (int *)malloc((size_t)(n > 0 ? n : 1) * sizeof(int));
    if (ks->exec_flat == NULL || ks->edge_src == NULL || ks->edge_cost == NULL
        || ks->edge_off == NULL || ks->task_finish == NULL
        || ks->proc_finish == NULL || ks->plan_off == NULL
        || ks->plan_len == NULL || ks->jp_proc == NULL || ks->jp_fin == NULL
        || ks->applied == NULL || ks->lmarks == NULL) {
        ks_free(ks);
        return NULL;
    }
    memcpy(ks->exec_flat, exec_flat, (size_t)(n * n_procs) * sizeof(double));
    memcpy(ks->edge_src, edge_src, (size_t)n_edges * sizeof(int));
    memcpy(ks->edge_cost, edge_cost, (size_t)n_edges * sizeof(double));
    memcpy(ks->edge_off, edge_off, (size_t)(n + 1) * sizeof(int));
    for (i = 0; i < pairs; i++)
        ks->plan_off[i] = -1;
    return ks;
}

void ks_free(kstate *ks)
{
    int i;
    if (ks == NULL)
        return;
    free(ks->exec_flat);
    free(ks->edge_src);
    free(ks->edge_cost);
    free(ks->edge_off);
    free(ks->task_finish);
    free(ks->proc_finish);
    for (i = 0; i < ks->n_cols; i++) {
        free(ks->cols[i].starts);
        free(ks->cols[i].finishes);
    }
    free(ks->cols);
    free(ks->plan_off);
    free(ks->plan_len);
    free(ks->plan_link);
    free(ks->plan_speed);
    free(ks->jl_link);
    free(ks->jl_idx);
    free(ks->jp_proc);
    free(ks->jp_fin);
    free(ks->applied);
    free(ks->lmarks);
    free(ks);
}

/* -- route plans ------------------------------------------------------------ */

int ks_set_plan(kstate *ks, int pair, int n_links, const int *lids,
                const double *speeds)
{
    int k;
    if (grow_i(&ks->plan_link, &ks->plan_cap, ks->plan_n + n_links))
        return -1;
    /* plan_speed shares plan_cap's growth schedule; reserve it to match. */
    if (ks->plan_cap > 0) {
        double *nb = (double *)realloc(ks->plan_speed,
                                       (size_t)ks->plan_cap * sizeof(double));
        if (nb == NULL)
            return -1;
        ks->plan_speed = nb;
    }
    for (k = 0; k < n_links; k++) {
        if (cols_cover(ks, lids[k]))
            return -1;
        ks->plan_link[ks->plan_n + k] = lids[k];
        ks->plan_speed[ks->plan_n + k] = speeds[k];
    }
    ks->plan_off[pair] = ks->plan_n;
    ks->plan_len[pair] = n_links;
    ks->plan_n += n_links;
    return 0;
}

/* -- journal rewind --------------------------------------------------------- */

static void rewind_links(kstate *ks, int lmark)
{
    while (ks->jl_n > lmark) {
        kcol *c;
        int idx;
        ks->jl_n--;
        c = &ks->cols[ks->jl_link[ks->jl_n]];
        idx = ks->jl_idx[ks->jl_n];
        memmove(c->starts + idx, c->starts + idx + 1,
                (size_t)(c->n - idx - 1) * sizeof(double));
        memmove(c->finishes + idx, c->finishes + idx + 1,
                (size_t)(c->n - idx - 1) * sizeof(double));
        c->n--;
    }
}

/* -- the hot loop ----------------------------------------------------------- */

double ks_evaluate(kstate *ks, const int *cand, int *out_divergence,
                   int *out_missing)
{
    int n = ks->n;
    int n_procs = ks->n_procs;
    int cut_through = ks->cut_through;
    double hop = ks->hop;
    int divergence, pos, p;
    double best;

    divergence = ks->n_applied;
    for (pos = 0; pos < ks->n_applied; pos++) {
        if (cand[pos] != ks->applied[pos]) {
            divergence = pos;
            break;
        }
    }
    if (divergence < ks->n_applied) {
        rewind_links(ks, ks->lmarks[divergence]);
        while (ks->jp_n > divergence) {
            ks->jp_n--;
            ks->proc_finish[ks->jp_proc[ks->jp_n]] = ks->jp_fin[ks->jp_n];
        }
        ks->n_applied = divergence;
    }
    *out_divergence = divergence;

    for (pos = divergence; pos < n; pos++) {
        int pidx = cand[pos];
        int lmark = ks->jl_n;
        int e, e_hi;
        double t_dr = 0.0;
        double last_finish, task_start, finish;
        ks->lmarks[pos] = lmark;
        ks->applied[pos] = pidx;
        ks->n_applied = pos + 1;
        e_hi = ks->edge_off[pos + 1];
        for (e = ks->edge_off[pos]; e < e_hi; e++) {
            int src_pos = ks->edge_src[e];
            double cost = ks->edge_cost[e];
            double ready = ks->task_finish[src_pos];
            int src_pidx = cand[src_pos];
            int pair, off, plen, li;
            double est, min_finish, arrival;
            if (src_pidx == pidx || cost <= 0.0) {
                if (ready > t_dr)
                    t_dr = ready;
                continue;
            }
            pair = src_pidx * n_procs + pidx;
            off = ks->plan_off[pair];
            if (off < 0) {
                /* Unresolved route: undo this position's partial bookings
                 * and hand the pair back to the caller to resolve. */
                rewind_links(ks, lmark);
                ks->n_applied = pos;
                *out_missing = pair;
                return 0.0;
            }
            est = ready;
            min_finish = 0.0;
            arrival = ready;
            plen = ks->plan_len[pair];
            for (li = 0; li < plen; li++) {
                kcol *c = &ks->cols[ks->plan_link[off + li]];
                double speed = ks->plan_speed[off + li];
                double duration = cost / speed;
                double floor_t = min_finish - duration;
                double lo = est >= floor_t ? est : floor_t;
                int n_booked = c->n;
                double key = lo + duration;
                double prev_finish, slot_start;
                int i, ilo, ihi;
                /* bisect_left(starts, lo + duration) */
                ilo = 0;
                ihi = n_booked;
                while (ilo < ihi) {
                    int mid = (ilo + ihi) / 2;
                    if (c->starts[mid] < key)
                        ilo = mid + 1;
                    else
                        ihi = mid;
                }
                i = ilo;
                prev_finish = i > 0 ? c->finishes[i - 1] : 0.0;
                for (;;) {
                    slot_start = prev_finish > lo ? prev_finish : lo;
                    arrival = slot_start + duration;
                    if (i >= n_booked || arrival <= c->starts[i])
                        break;
                    prev_finish = c->finishes[i];
                    i++;
                }
                if (col_reserve(c, c->n + 1)
                    || grow_i(&ks->jl_link, &ks->jl_cap, ks->jl_n + 1)) {
                    *out_missing = -2;
                    return 0.0;
                }
                /* jl_idx shares jl_cap's growth schedule. */
                {
                    int *nb = (int *)realloc(ks->jl_idx,
                                             (size_t)ks->jl_cap * sizeof(int));
                    if (nb == NULL) {
                        *out_missing = -2;
                        return 0.0;
                    }
                    ks->jl_idx = nb;
                }
                memmove(c->starts + i + 1, c->starts + i,
                        (size_t)(c->n - i) * sizeof(double));
                memmove(c->finishes + i + 1, c->finishes + i,
                        (size_t)(c->n - i) * sizeof(double));
                c->starts[i] = slot_start;
                c->finishes[i] = arrival;
                c->n++;
                ks->jl_link[ks->jl_n] = ks->plan_link[off + li];
                ks->jl_idx[ks->jl_n] = i;
                ks->jl_n++;
                if (cut_through) {
                    est = slot_start + hop;
                    min_finish = arrival + hop;
                } else {
                    est = arrival + hop;
                    min_finish = 0.0;
                }
            }
            if (arrival > t_dr)
                t_dr = arrival;
        }
        last_finish = ks->proc_finish[pidx];
        ks->jp_proc[pos] = pidx;
        ks->jp_fin[pos] = last_finish;
        ks->jp_n = pos + 1;
        task_start = last_finish > t_dr ? last_finish : t_dr;
        finish = task_start + ks->exec_flat[pos * n_procs + pidx];
        ks->proc_finish[pidx] = finish;
        ks->task_finish[pos] = finish;
    }
    *out_missing = -1;
    best = ks->proc_finish[0];
    for (p = 1; p < n_procs; p++) {
        if (ks->proc_finish[p] > best)
            best = ks->proc_finish[p];
    }
    return best;
}

/* -- introspection (differential tests / views) ----------------------------- */

int ks_max_lid(kstate *ks)
{
    return ks->n_cols - 1;
}

int ks_link_len(kstate *ks, int lid)
{
    if (lid < 0 || lid >= ks->n_cols)
        return 0;
    return ks->cols[lid].n;
}

void ks_read_link(kstate *ks, int lid, double *starts_out,
                  double *finishes_out)
{
    kcol *c;
    if (lid < 0 || lid >= ks->n_cols)
        return;
    c = &ks->cols[lid];
    memcpy(starts_out, c->starts, (size_t)c->n * sizeof(double));
    memcpy(finishes_out, c->finishes, (size_t)c->n * sizeof(double));
}

void ks_read_proc(kstate *ks, double *out)
{
    memcpy(out, ks->proc_finish, (size_t)ks->n_procs * sizeof(double));
}

double ks_makespan(kstate *ks)
{
    int p;
    double best = ks->proc_finish[0];
    for (p = 1; p < ks->n_procs; p++) {
        if (ks->proc_finish[p] > best)
            best = ks->proc_finish[p];
    }
    return best;
}
