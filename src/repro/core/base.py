"""List-scheduling framework shared by all contention-aware algorithms.

Every scheduler follows the same outer loop (paper Algorithm 1):

1. order tasks by static priority (descending bottom level, precedence-safe),
2. for each task: pick a processor, schedule its incoming communications
   onto network links, then book the task itself (end technique — the
   model's ``t_s(n, P) = max(t_dr(n, P), t_f(P))``).

Subclasses define the three policy points: processor selection, edge order,
and how an edge is routed + booked.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.schedule import Schedule
from repro.exceptions import SchedulingError
from repro.network.topology import NetworkTopology, Vertex
from repro.network.validate import validate_topology
from repro.obs import OBS, ScheduleStats, Snapshot, Timings, diff_snapshots, diff_timings, span
from repro.procsched.state import ProcessorState
from repro.taskgraph.graph import CommEdge, TaskGraph
from repro.taskgraph.priorities import priority_list
from repro.taskgraph.validate import validate_graph
from repro.types import TaskId


class ContentionScheduler(ABC):
    """Base class: validates inputs, runs the list loop, assembles the result."""

    #: short algorithm name used in reports
    name: str = "base"

    #: book tasks into idle processor gaps instead of appending (ablation knob)
    task_insertion: bool = False

    def schedule(self, graph: TaskGraph, net: NetworkTopology) -> Schedule:
        """Schedule ``graph`` onto ``net`` and return the full schedule.

        When :mod:`repro.obs` is enabled the returned schedule carries a
        ``stats`` attachment: the run's counter/histogram deltas, per-phase
        timings, and (for in-memory sinks) its decision-event log.
        """
        validate_graph(graph)
        validate_topology(net)
        observing = OBS.on
        if observing:
            metrics_before = OBS.metrics.snapshot()
            timings_before = OBS.profiler.snapshot()
            event_mark = OBS.bus.mark()
        self._begin(graph, net)
        procs = sorted(net.processors(), key=lambda p: p.vid)
        pstate = ProcessorState()
        for tid in priority_list(graph):
            self._place_task(graph, net, tid, procs, pstate)
        result = self._finish(graph, net, pstate)
        if observing:
            self._attach_stats(
                result, metrics_before, timings_before, event_mark
            )
        return result

    def _attach_stats(
        self,
        result: Schedule,
        metrics_before: Snapshot,
        timings_before: Timings,
        event_mark: int,
    ) -> None:
        """Summarize what this run did and hang it off the schedule."""
        from repro.core.metrics import link_utilization

        util = link_utilization(result)
        gauges = OBS.metrics
        gauges.gauge(f"schedule.{self.name}.makespan").set(result.makespan)
        gauges.gauge(f"schedule.{self.name}.links_used").set(float(len(util)))
        if util:
            gauges.gauge(f"schedule.{self.name}.max_link_utilization").set(
                max(util.values())
            )
        result.stats = ScheduleStats(
            metrics=diff_snapshots(metrics_before, OBS.metrics.snapshot()),
            timings=diff_timings(timings_before, OBS.profiler.snapshot()),
            events=OBS.bus.since(event_mark),
        )

    # -- hooks ----------------------------------------------------------------

    @abstractmethod
    def _begin(self, graph: TaskGraph, net: NetworkTopology) -> None:
        """Reset per-run state (link schedules etc.)."""

    @abstractmethod
    def _place_task(
        self,
        graph: TaskGraph,
        net: NetworkTopology,
        tid: TaskId,
        procs: list[Vertex],
        pstate: ProcessorState,
    ) -> None:
        """Choose a processor for ``tid``, book its in-edges and the task."""

    @abstractmethod
    def _finish(
        self, graph: TaskGraph, net: NetworkTopology, pstate: ProcessorState
    ) -> Schedule:
        """Assemble the :class:`Schedule` from the run's state."""

    # -- shared helpers --------------------------------------------------------

    @staticmethod
    def _in_edges_by_cost(graph: TaskGraph, tid: TaskId) -> list[CommEdge]:
        """The paper's edge priority: descending cost, stable on source id."""
        return sorted(graph.in_edges(tid), key=lambda e: (-e.cost, e.src))

    @staticmethod
    def _mls_select_processor(
        graph: TaskGraph,
        tid: TaskId,
        procs: list[Vertex],
        pstate: ProcessorState,
        mls: float,
        *,
        local_comm_exempt: bool = True,
    ) -> Vertex:
        """The paper's Section 4.1 processor heuristic (shared by OIHSA/BBSA).

        ``min_P [ max( max_j(t_f(pred_j) + c(e_j,i)/MLS), t_f(P) ) + w/s(P) ]``

        With ``local_comm_exempt`` (default) the ``c/MLS`` term is dropped for
        predecessors already on the candidate processor, consistent with the
        model's free local communication; the printed formula has no such
        conditional, so ``False`` gives the literal reading (ablation knob).
        """
        if mls <= 0:
            raise SchedulingError(f"invalid mean link speed {mls}")
        weight = graph.task(tid).weight
        # Each predecessor's placement and remote estimate are the same for
        # every candidate; compute them once instead of per processor.
        preds = []
        for e in graph.in_edges(tid):
            src_pl = pstate.placement(e.src)
            preds.append((src_pl.processor, src_pl.finish, src_pl.finish + e.cost / mls))
        # ``procs`` is sorted by vid (see ``schedule``), so iterating in order
        # and keeping the first strict improvement reproduces the
        # ``(finish, vid)`` tie-break without building a tuple per candidate.
        best_finish = float("inf")
        chosen = procs[0]
        finish_time = pstate.finish_time
        for proc in procs:
            vid = proc.vid
            comm_bound = 0.0
            if local_comm_exempt:
                for src_proc, local_est, remote_est in preds:
                    est = local_est if src_proc == vid else remote_est
                    if est > comm_bound:
                        comm_bound = est
            else:
                for _, _, remote_est in preds:
                    if remote_est > comm_bound:
                        comm_bound = remote_est
            ft = finish_time(vid)
            if ft > comm_bound:
                comm_bound = ft
            finish = comm_bound + weight / proc.speed
            if finish < best_finish:
                best_finish, chosen = finish, proc
        return chosen

    @staticmethod
    def _place_on(
        pstate: ProcessorState,
        tid: TaskId,
        proc: Vertex,
        weight: float,
        data_ready: float,
        *,
        insertion: bool,
    ) -> float:
        """Book the task on ``proc``; return its finish time."""
        if proc.speed <= 0:
            raise SchedulingError(f"processor {proc.vid} has invalid speed")
        with span("task_placement"):
            placement = pstate.place(
                tid, proc.vid, weight / proc.speed, data_ready, insertion=insertion
            )
        return placement.finish
