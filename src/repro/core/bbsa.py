"""BBSA — Bandwidth Based Scheduling Algorithm (paper Section 5).

Shares OIHSA's framework (MLS processor estimate, descending-cost edge
priority, contention-aware Dijkstra routing) but books communications on the
bandwidth-shared fluid link model: a transfer may use the *remaining*
bandwidth of partially occupied periods and split its volume over time, so
spare capacity is never wasted and data moves as early as causality allows.
"""

from __future__ import annotations

from repro.core.base import ContentionScheduler
from repro.core.schedule import Schedule
from repro.linksched.bandwidth import BandwidthLinkState
from repro.linksched.commmodel import CUT_THROUGH, CommModel
from repro.network.routing import bfs_route, dijkstra_route
from repro.network.topology import Link, NetworkTopology, Vertex
from repro.obs import OBS, span
from repro.procsched.state import ProcessorState
from repro.taskgraph.graph import TaskGraph
from repro.types import EdgeKey, TaskId


class BBSAScheduler(ContentionScheduler):
    """Contention-aware scheduling on bandwidth-shared (fluid) links."""

    name = "bbsa"

    def __init__(
        self,
        *,
        task_insertion: bool = False,
        modified_routing: bool = True,
        edge_priority: bool = True,
        local_comm_exempt: bool = True,
        comm: CommModel = CUT_THROUGH,
    ) -> None:
        self.task_insertion = task_insertion
        self.modified_routing = modified_routing
        self.edge_priority = edge_priority
        self.local_comm_exempt = local_comm_exempt
        self.comm = comm
        self._bstate = BandwidthLinkState()
        self._arrivals: dict[EdgeKey, float] = {}
        self._mls = 1.0

    def _begin(self, graph: TaskGraph, net: NetworkTopology) -> None:
        self._bstate = BandwidthLinkState()
        self._arrivals = {}
        self._mls = net.mean_link_speed() if net.num_links else 1.0

    def _route(self, net: NetworkTopology, src: int, dst: int, cost: float, ready: float):
        if not self.modified_routing:
            with span("routing"):
                return bfs_route(net, src, dst)

        def probe(link: Link, t: float) -> float:
            if OBS.on:
                OBS.metrics.counter("bandwidth.probes").inc()
            return self._bstate.probe_link(link, cost, t)

        with span("routing"):
            return dijkstra_route(net, src, dst, ready, probe)

    def _place_task(
        self,
        graph: TaskGraph,
        net: NetworkTopology,
        tid: TaskId,
        procs: list[Vertex],
        pstate: ProcessorState,
    ) -> None:
        with span("processor_selection"):
            proc = self._mls_select_processor(
                graph, tid, procs, pstate, self._mls,
                local_comm_exempt=self.local_comm_exempt,
            )
        if OBS.on:
            OBS.metrics.counter("scheduler.processors_chosen").inc()
            OBS.emit(
                "processor_chosen",
                task=tid,
                proc=proc.vid,
                policy="mls-estimate",
                candidates=len(procs),
            )
        weight = graph.task(tid).weight
        if self.edge_priority:
            edges = self._in_edges_by_cost(graph, tid)
        else:
            edges = sorted(graph.in_edges(tid), key=lambda e: e.src)
        t_dr = 0.0
        for e in edges:
            src_pl = pstate.placement(e.src)
            if src_pl.processor == proc.vid:
                arrival = src_pl.finish
                self._bstate.schedule_edge(e.key, [], e.cost, src_pl.finish, self.comm)
            else:
                route = self._route(net, src_pl.processor, proc.vid, e.cost, src_pl.finish)
                with span("insertion"):
                    arrival = self._bstate.schedule_edge(
                        e.key, route, e.cost, src_pl.finish, self.comm
                    )
                if OBS.on:
                    OBS.metrics.counter("insertion.edges_scheduled").inc()
                    OBS.emit(
                        "edge_scheduled",
                        t=arrival,
                        edge=list(e.key),
                        policy="bandwidth",
                        links=[l.lid for l in route],
                        ready=src_pl.finish,
                        arrival=arrival,
                    )
            self._arrivals[e.key] = arrival
            t_dr = max(t_dr, arrival)
        self._place_on(pstate, tid, proc, weight, t_dr, insertion=self.task_insertion)

    def _finish(
        self, graph: TaskGraph, net: NetworkTopology, pstate: ProcessorState
    ) -> Schedule:
        return Schedule(
            algorithm=self.name,
            graph=graph,
            net=net,
            placements=pstate.placements(),
            edge_arrivals=dict(self._arrivals),
            bandwidth_state=self._bstate,
            comm=self.comm,
        )
