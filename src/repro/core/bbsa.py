"""BBSA — Bandwidth Based Scheduling Algorithm (paper Section 5).

Shares OIHSA's framework (MLS processor estimate, descending-cost edge
priority, contention-aware Dijkstra routing) but books communications on the
bandwidth-shared fluid link model: a transfer may use the *remaining*
bandwidth of partially occupied periods and split its volume over time, so
spare capacity is never wasted and data moves as early as causality allows.
"""

from __future__ import annotations

from heapq import heappop, heappush
from math import inf

from repro.core.base import ContentionScheduler
from repro.core.schedule import Schedule
from repro.exceptions import RoutingError, SchedulingError
from repro.linksched.bandwidth import (
    _FEPS,
    BandwidthLinkState,
    BandwidthProfile,
    probe_step_finish,
)
from repro.linksched.commmodel import CUT_THROUGH, CommModel
from repro.network.routing import _check_endpoints, bfs_route, dijkstra_route
from repro.network.topology import Link, NetworkTopology, Route, Vertex
from repro.obs import OBS, span
from repro.procsched.state import ProcessorState
from repro.taskgraph.graph import TaskGraph
from repro.types import EdgeKey, LinkId, TaskId


def _dijkstra_fluid(
    net: NetworkTopology,
    src: int,
    dst: int,
    ready_time: float,
    cost: float,
    profiles: dict[LinkId, BandwidthProfile],
    tiny: bool,
) -> Route:
    """Obs-off specialization of :func:`repro.network.routing.dijkstra_route`
    with BBSA's fluid step-arrival probe inlined into the relax loop.

    Bit-identical routes to the closure-driven generic loop in
    :meth:`BBSAScheduler._route`: same labels, same tie-breaks, same two
    lower-bound prunes — only the closure calls, counter hooks, and the
    provably hit-free within-round memo lookups are removed (see
    :func:`repro.core.oihsa._dijkstra_indexed` for the argument).
    """
    _check_endpoints(net, src, dst)
    if src == dst:
        return []
    if ready_time < 0:
        raise RoutingError(f"negative ready time {ready_time}")
    n = net.num_vertices
    dist_t: list[float] = [inf] * n
    dist_h: list[int] = [0] * n
    parent_v: list[int] = [-1] * n
    parent_l: list[Link | None] = [None] * n
    done = bytearray(n)
    dist_t[src] = ready_time
    heap: list[tuple[float, int, int]] = [(ready_time, 0, src)]
    out_links = net.sorted_out_links
    profiles_get = profiles.get
    best_dst = inf
    while heap:
        d, hops, u = heappop(heap)
        if done[u]:
            continue
        done[u] = 1
        if u == dst:
            break
        nh = hops + 1
        for link, v in out_links(u):
            if done[v]:
                continue
            cur_t = dist_t[v]
            lb = d + cost / link.speed
            if cur_t != inf or best_dst != inf:
                if lb > cur_t or (lb == cur_t and nh >= dist_h[v]) or lb > best_dst:
                    continue
            # Inlined fluid probe (same arithmetic as ``_route``'s closure).
            if tiny:
                arrival = d
            else:
                prof = profiles_get(link.lid)
                arrival = probe_step_finish(
                    prof.segments if prof is not None else (),
                    d, cost, link.speed,
                )
            if arrival < cur_t or (arrival == cur_t and nh < dist_h[v]):
                dist_t[v] = arrival
                dist_h[v] = nh
                parent_v[v] = u
                parent_l[v] = link
                heappush(heap, (arrival, nh, v))
                if v == dst:
                    best_dst = arrival
    if parent_l[dst] is None:
        raise RoutingError(
            f"no route from processor {src} to {dst} in topology {net.name!r}"
        )
    route = []
    cur = dst
    while cur != src:
        route.append(parent_l[cur])
        cur = parent_v[cur]
    route.reverse()
    return route


class BBSAScheduler(ContentionScheduler):
    """Contention-aware scheduling on bandwidth-shared (fluid) links."""

    name = "bbsa"

    def __init__(
        self,
        *,
        task_insertion: bool = False,
        modified_routing: bool = True,
        edge_priority: bool = True,
        local_comm_exempt: bool = True,
        probe_cache: bool = True,
        comm: CommModel = CUT_THROUGH,
    ) -> None:
        self.task_insertion = task_insertion
        self.modified_routing = modified_routing
        self.edge_priority = edge_priority
        self.local_comm_exempt = local_comm_exempt
        self.probe_cache = probe_cache
        self.comm = comm
        self._bstate = BandwidthLinkState()
        self._arrivals: dict[EdgeKey, float] = {}
        self._mls = 1.0
        self._probe_memo: dict[tuple, float] = {}

    def _begin(self, graph: TaskGraph, net: NetworkTopology) -> None:
        self._bstate = BandwidthLinkState()
        self._arrivals = {}
        self._mls = net.mean_link_speed() if net.num_links else 1.0
        self._probe_memo = {}

    def _route(
        self, net: NetworkTopology, src: int, dst: int, cost: float, ready: float
    ) -> Route:
        if not self.modified_routing:
            with span("routing"):
                return bfs_route(net, src, dst)

        bstate = self._bstate
        if not self.probe_cache:
            def probe(link: Link, t: float) -> float:
                if OBS.on:
                    OBS.metrics.counter("bandwidth.probes").inc()
                return bstate.probe_link(link, cost, t)

            with span("routing"):
                return dijkstra_route(net, src, dst, ready, probe)

        if cost < 0:
            raise SchedulingError(f"negative volume {cost}")
        memo = self._probe_memo
        # Hot path: skip per-probe method dispatch into the bandwidth state.
        versions = bstate._versions
        profiles = bstate._profiles
        tiny = cost <= _FEPS

        if OBS.on:
            # Ticks once per relaxation — exactly where the uncached probe
            # incremented it — so ``bandwidth.probes`` is unchanged by
            # caching.
            probes_c = OBS.metrics.counter("bandwidth.probes")
            misses_c = OBS.metrics.counter("routing.probe_cache_misses")
            hits_c = OBS.metrics.counter("routing.probe_cache_hits")

            def lower_bound(link: Link, t: float) -> float:
                probes_c.inc()
                return t + cost / link.speed

            def probe(link: Link, t: float) -> float:
                key = (link.lid, versions.get(link.lid, 0), t, cost)
                finish = memo.get(key)
                if finish is None:
                    if tiny:
                        finish = t
                    else:
                        prof = profiles.get(link.lid)
                        finish = probe_step_finish(
                            prof.segments if prof is not None else (),
                            t, cost, link.speed,
                        )
                    memo[key] = finish
                    misses_c.inc()
                else:
                    hits_c.inc()
                return finish
        else:
            # Obs-off fast path: the fully inlined loop (memo lookup skipped
            # — provably a no-op, each link is relaxed exactly once per
            # ``dijkstra_route`` round so a within-round memo can never hit;
            # see the OIHSA probe for the full argument).
            with span("routing"):
                return _dijkstra_fluid(net, src, dst, ready, cost, profiles, tiny)

        with span("routing"):
            return dijkstra_route(net, src, dst, ready, probe, lower_bound)

    def _place_task(
        self,
        graph: TaskGraph,
        net: NetworkTopology,
        tid: TaskId,
        procs: list[Vertex],
        pstate: ProcessorState,
    ) -> None:
        with span("processor_selection"):
            proc = self._mls_select_processor(
                graph, tid, procs, pstate, self._mls,
                local_comm_exempt=self.local_comm_exempt,
            )
        if OBS.on:
            OBS.metrics.counter("scheduler.processors_chosen").inc()
            OBS.emit(
                "processor_chosen",
                task=tid,
                proc=proc.vid,
                policy="mls-estimate",
                candidates=len(procs),
            )
        weight = graph.task(tid).weight
        if self.edge_priority:
            edges = self._in_edges_by_cost(graph, tid)
        else:
            edges = sorted(graph.in_edges(tid), key=lambda e: e.src)
        t_dr = 0.0
        for e in edges:
            src_pl = pstate.placement(e.src)
            if src_pl.processor == proc.vid:
                arrival = src_pl.finish
                self._bstate.schedule_edge(e.key, [], e.cost, src_pl.finish, self.comm)
            else:
                route = self._route(net, src_pl.processor, proc.vid, e.cost, src_pl.finish)
                with span("insertion"):
                    arrival = self._bstate.schedule_edge(
                        e.key, route, e.cost, src_pl.finish, self.comm
                    )
                if OBS.on:
                    OBS.metrics.counter("insertion.edges_scheduled").inc()
                    OBS.emit(
                        "edge_scheduled",
                        t=arrival,
                        edge=list(e.key),
                        policy="bandwidth",
                        links=[l.lid for l in route],
                        ready=src_pl.finish,
                        arrival=arrival,
                    )
            self._arrivals[e.key] = arrival
            t_dr = max(t_dr, arrival)
        self._place_on(pstate, tid, proc, weight, t_dr, insertion=self.task_insertion)

    def _finish(
        self, graph: TaskGraph, net: NetworkTopology, pstate: ProcessorState
    ) -> Schedule:
        return Schedule(
            algorithm=self.name,
            graph=graph,
            net=net,
            placements=pstate.placements(),
            edge_arrivals=dict(self._arrivals),
            bandwidth_state=self._bstate,
            comm=self.comm,
        )
