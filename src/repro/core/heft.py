"""HEFT — Heterogeneous Earliest Finish Time (Topcuoglu et al., 2002).

The best-known classic-model list scheduler, included as a literature
baseline (the paper's introduction situates its contribution against this
family).  HEFT differs from :class:`repro.core.classic.ClassicScheduler` in
two ways:

- **upward rank** priority: ``rank_u(n) = w(n)/s_mean + max_succ(c/MLS +
  rank_u(succ))`` — costs normalized by platform means, so ordering reflects
  the actual platform, not raw costs;
- **insertion-based** EFT: tasks may fill idle gaps between already-placed
  tasks.

Like the classic scheduler it assumes a contention-free network — pair it
with :func:`repro.core.replay.replay_under_contention` to see what its
schedules cost on a real network.
"""

from __future__ import annotations

import heapq

from repro.core.base import ContentionScheduler
from repro.core.schedule import Schedule
from repro.network.topology import NetworkTopology, Vertex
from repro.procsched.state import ProcessorState
from repro.taskgraph.graph import TaskGraph
from repro.types import EdgeKey, TaskId


def upward_ranks(
    graph: TaskGraph, mean_proc_speed: float, mean_link_speed: float
) -> dict[TaskId, float]:
    """HEFT's rank_u with costs normalized by the platform means."""
    ranks: dict[TaskId, float] = {}
    for tid in reversed(graph.topological_order()):
        w = graph.task(tid).weight / mean_proc_speed
        best = 0.0
        for succ in graph.successors(tid):
            cand = graph.edge(tid, succ).cost / mean_link_speed + ranks[succ]
            if cand > best:
                best = cand
        ranks[tid] = w + best
    return ranks


class HEFTScheduler(ContentionScheduler):
    """Insertion-based EFT under the contention-free model, rank_u priority."""

    name = "heft"
    task_insertion = True

    def __init__(self) -> None:
        self._arrivals: dict[EdgeKey, float] = {}
        self._mls = 1.0

    def schedule(self, graph: TaskGraph, net: NetworkTopology) -> Schedule:
        # HEFT orders by rank_u rather than the paper's bottom level, so the
        # base-class loop is re-driven with a different priority queue.
        from repro.network.validate import validate_topology
        from repro.taskgraph.validate import validate_graph

        validate_graph(graph)
        validate_topology(net)
        self._begin(graph, net)
        ranks = upward_ranks(graph, net.mean_processor_speed(), self._mls)
        procs = sorted(net.processors(), key=lambda p: p.vid)
        pstate = ProcessorState()
        indeg = {t: len(graph.predecessors(t)) for t in graph.task_ids()}
        ready = [(-ranks[t], t) for t, d in indeg.items() if d == 0]
        heapq.heapify(ready)
        while ready:
            _, tid = heapq.heappop(ready)
            self._place_task(graph, net, tid, procs, pstate)
            for s in graph.successors(tid):
                indeg[s] -= 1
                if indeg[s] == 0:
                    heapq.heappush(ready, (-ranks[s], s))
        return self._finish(graph, net, pstate)

    def _begin(self, graph: TaskGraph, net: NetworkTopology) -> None:
        self._arrivals = {}
        self._mls = net.mean_link_speed() if net.num_links else 1.0

    def _comm_time(self, cost: float, src_proc: int, dst_proc: int) -> float:
        if src_proc == dst_proc or cost <= 0:
            return 0.0
        return cost / self._mls

    def _place_task(
        self,
        graph: TaskGraph,
        net: NetworkTopology,
        tid: TaskId,
        procs: list[Vertex],
        pstate: ProcessorState,
    ) -> None:
        weight = graph.task(tid).weight
        best: tuple[float, int, float] | None = None
        for proc in procs:
            t_dr = 0.0
            for e in graph.in_edges(tid):
                src_pl = pstate.placement(e.src)
                arrival = src_pl.finish + self._comm_time(
                    e.cost, src_pl.processor, proc.vid
                )
                t_dr = max(t_dr, arrival)
            _, _, finish = pstate.probe(
                proc.vid, weight / proc.speed, t_dr, insertion=True
            )
            key = (finish, proc.vid, t_dr)
            if best is None or key[:2] < best[:2]:
                best = key
        assert best is not None
        _, vid, t_dr = best
        proc = next(p for p in procs if p.vid == vid)
        for e in graph.in_edges(tid):
            src_pl = pstate.placement(e.src)
            self._arrivals[e.key] = src_pl.finish + self._comm_time(
                e.cost, src_pl.processor, proc.vid
            )
        pstate.place(tid, proc.vid, weight / proc.speed, t_dr, insertion=True)

    def _finish(
        self, graph: TaskGraph, net: NetworkTopology, pstate: ProcessorState
    ) -> Schedule:
        return Schedule(
            algorithm=self.name,
            graph=graph,
            net=net,
            placements=pstate.placements(),
            edge_arrivals=dict(self._arrivals),
        )
