"""CPOP — Critical Path On a Processor (Topcuoglu et al., 2002).

Second classic-model literature baseline: tasks are prioritized by
``rank_u + rank_d`` (upward plus downward rank); tasks on the critical path
are all pinned to the single processor that executes the whole path fastest,
everything else goes to its earliest-finish processor.
"""

from __future__ import annotations

import heapq

from repro.core.heft import upward_ranks
from repro.core.schedule import Schedule
from repro.core.base import ContentionScheduler
from repro.network.topology import NetworkTopology, Vertex
from repro.procsched.state import ProcessorState
from repro.taskgraph.graph import TaskGraph
from repro.types import EdgeKey, TaskId


def downward_ranks(
    graph: TaskGraph, mean_proc_speed: float, mean_link_speed: float
) -> dict[TaskId, float]:
    """CPOP's rank_d: longest normalized path from any entry task."""
    ranks: dict[TaskId, float] = {}
    for tid in graph.topological_order():
        best = 0.0
        for pred in graph.predecessors(tid):
            cand = (
                ranks[pred]
                + graph.task(pred).weight / mean_proc_speed
                + graph.edge(pred, tid).cost / mean_link_speed
            )
            if cand > best:
                best = cand
        ranks[tid] = best
    return ranks


class CPOPScheduler(ContentionScheduler):
    """Critical-path pinning + EFT for the rest, contention-free model."""

    name = "cpop"
    task_insertion = True

    def __init__(self) -> None:
        self._arrivals: dict[EdgeKey, float] = {}
        self._mls = 1.0
        self._cp_tasks: set[TaskId] = set()
        self._cp_proc: int | None = None

    def schedule(self, graph: TaskGraph, net: NetworkTopology) -> Schedule:
        from repro.network.validate import validate_topology
        from repro.taskgraph.validate import validate_graph

        validate_graph(graph)
        validate_topology(net)
        self._begin(graph, net)
        s_mean = net.mean_processor_speed()
        rank_u = upward_ranks(graph, s_mean, self._mls)
        rank_d = downward_ranks(graph, s_mean, self._mls)
        priority = {t: rank_u[t] + rank_d[t] for t in graph.task_ids()}

        # The critical path: entry task with max priority, then greedily the
        # successor with (numerically) the same priority.
        cp_value = max(priority[t] for t in graph.sources())
        self._cp_tasks = set()
        cur = max(graph.sources(), key=lambda t: (priority[t], -t))
        self._cp_tasks.add(cur)
        while graph.successors(cur):
            cur = max(graph.successors(cur), key=lambda s: (priority[s], -s))
            self._cp_tasks.add(cur)
        del cp_value
        # Pin the path to the processor executing its total work fastest:
        # with speed-proportional execution that is simply the fastest one.
        procs = sorted(net.processors(), key=lambda p: p.vid)
        self._cp_proc = max(procs, key=lambda p: (p.speed, -p.vid)).vid

        pstate = ProcessorState()
        indeg = {t: len(graph.predecessors(t)) for t in graph.task_ids()}
        ready = [(-priority[t], t) for t, d in indeg.items() if d == 0]
        heapq.heapify(ready)
        while ready:
            _, tid = heapq.heappop(ready)
            self._place_task(graph, net, tid, procs, pstate)
            for s in graph.successors(tid):
                indeg[s] -= 1
                if indeg[s] == 0:
                    heapq.heappush(ready, (-priority[s], s))
        return self._finish(graph, net, pstate)

    def _begin(self, graph: TaskGraph, net: NetworkTopology) -> None:
        self._arrivals = {}
        self._mls = net.mean_link_speed() if net.num_links else 1.0

    def _comm_time(self, cost: float, src_proc: int, dst_proc: int) -> float:
        if src_proc == dst_proc or cost <= 0:
            return 0.0
        return cost / self._mls

    def _data_ready(
        self, graph: TaskGraph, tid: TaskId, vid: int, pstate: ProcessorState
    ) -> float:
        t_dr = 0.0
        for e in graph.in_edges(tid):
            src_pl = pstate.placement(e.src)
            arrival = src_pl.finish + self._comm_time(e.cost, src_pl.processor, vid)
            t_dr = max(t_dr, arrival)
        return t_dr

    def _place_task(
        self,
        graph: TaskGraph,
        net: NetworkTopology,
        tid: TaskId,
        procs: list[Vertex],
        pstate: ProcessorState,
    ) -> None:
        weight = graph.task(tid).weight
        if tid in self._cp_tasks:
            vid = self._cp_proc
            assert vid is not None
        else:
            best: tuple[float, int] | None = None
            vid = procs[0].vid
            for proc in procs:
                t_dr = self._data_ready(graph, tid, proc.vid, pstate)
                _, _, finish = pstate.probe(
                    proc.vid, weight / proc.speed, t_dr, insertion=True
                )
                key = (finish, proc.vid)
                if best is None or key < best:
                    best, vid = key, proc.vid
        proc = net.vertex(vid)
        t_dr = self._data_ready(graph, tid, vid, pstate)
        for e in graph.in_edges(tid):
            src_pl = pstate.placement(e.src)
            self._arrivals[e.key] = src_pl.finish + self._comm_time(
                e.cost, src_pl.processor, vid
            )
        pstate.place(tid, vid, weight / proc.speed, t_dr, insertion=True)

    def _finish(
        self, graph: TaskGraph, net: NetworkTopology, pstate: ProcessorState
    ) -> Schedule:
        return Schedule(
            algorithm=self.name,
            graph=graph,
            net=net,
            placements=pstate.placements(),
            edge_arrivals=dict(self._arrivals),
        )
