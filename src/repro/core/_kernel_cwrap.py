"""Thin wrapper giving the AOT-built kernel the PyKernel protocol.

Importing this module requires the optional extension
``repro.core._kernel_c`` (built by :mod:`repro.core.kernel_build`); the
:mod:`repro.core.kernelreg` probe catches the ImportError and falls back
to the pure-Python reference.  :class:`CKernel` keeps all candidate state
in C (columns, journals, route plans) and crosses the FFI boundary once
per evaluation: one genome copy in, one ``(makespan, divergence,
missing_pair)`` triple out.  The view classes exist for the differential
tests, which read the live columns back; they return copies, which is
fine — the contract is read-only inspection.
"""

from __future__ import annotations

from typing import Sequence

from repro.core._kernel_c import ffi, lib  # type: ignore[import-not-found]
from repro.types import LinkId

#: mirrors repro.core._kernel.KERNEL_VARIANT for the compiled twin
KERNEL_VARIANT = "compiled"
COMPILED = True


class CLinkStateView:
    """Read-only view of the C kernel's link columns."""

    def __init__(self, kernel: "CKernel") -> None:
        self._kernel = kernel

    def columns(self, lid: LinkId) -> tuple[list[float], list[float]]:
        """Copies of ``lid``'s ``(starts, finishes)`` columns."""
        ks = self._kernel._ks
        n = lib.ks_link_len(ks, lid)
        if n == 0:
            return ([], [])
        starts = ffi.new("double[]", n)
        finishes = ffi.new("double[]", n)
        lib.ks_read_link(ks, lid, starts, finishes)
        return (ffi.unpack(starts, n), ffi.unpack(finishes, n))

    def booked_links(self) -> list[LinkId]:
        """Link ids with at least one live booking, ascending."""
        ks = self._kernel._ks
        max_lid = lib.ks_max_lid(ks)
        return [
            lid for lid in range(max_lid + 1) if lib.ks_link_len(ks, lid) > 0
        ]


class CProcStateView:
    """Read-only view of the C kernel's processor finish column."""

    def __init__(self, kernel: "CKernel") -> None:
        self._kernel = kernel

    @property
    def finish(self) -> list[float]:
        """Copy of the per-processor finish column."""
        kernel = self._kernel
        out = ffi.new("double[]", kernel._n_procs)
        lib.ks_read_proc(kernel._ks, out)
        return ffi.unpack(out, kernel._n_procs)

    def makespan(self) -> float:
        """Completion time of the busiest processor (0 when all idle)."""
        return lib.ks_makespan(self._kernel._ks)


class CKernel:
    """The compiled kernel behind the shared construction signature."""

    variant = KERNEL_VARIANT
    compiled = COMPILED

    def __init__(
        self,
        n: int,
        n_procs: int,
        exec_flat: list[float],
        edge_src: list[int],
        edge_cost: list[float],
        edge_off: list[int],
        cut_through: bool,
        hop: float,
    ) -> None:
        ks = lib.ks_new(
            n,
            n_procs,
            ffi.new("double[]", exec_flat),
            ffi.new("int[]", edge_src),
            ffi.new("double[]", edge_cost),
            ffi.new("int[]", edge_off),
            1 if cut_through else 0,
            hop,
        )
        if ks == ffi.NULL:
            raise MemoryError("kernel state allocation failed")
        self._ks = ffi.gc(ks, lib.ks_free)
        self._n = n
        self._n_procs = n_procs
        #: persistent genome buffer: one slice-assign per evaluation
        self._cand = ffi.new("int[]", n if n > 0 else 1)
        self._div = ffi.new("int *")
        self._missing = ffi.new("int *")
        self._links = CLinkStateView(self)
        self._procs = CProcStateView(self)

    def set_plan(
        self, pair: int, lids: Sequence[LinkId], speeds: Sequence[float]
    ) -> None:
        """Install the route plan for processor pair ``pair``."""
        rc = lib.ks_set_plan(
            self._ks,
            pair,
            len(lids),
            ffi.new("int[]", list(lids)),
            ffi.new("double[]", list(speeds)),
        )
        if rc != 0:
            raise MemoryError("route-plan allocation failed")

    def evaluate(self, cand: list[int]) -> tuple[float, int, int]:
        """Score ``cand``: ``(makespan, divergence, missing_pair)``.

        Same contract as :meth:`repro.core._kernel.PyKernel.evaluate`.
        """
        n = self._n
        buf = self._cand
        buf[0:n] = cand
        span = lib.ks_evaluate(self._ks, buf, self._div, self._missing)
        missing = self._missing[0]
        if missing == -2:
            raise MemoryError("kernel column allocation failed")
        if missing >= 0:
            return 0.0, self._div[0], missing
        return span, self._div[0], -1

    # -- introspection (differential tests) ----------------------------------

    @property
    def link_state(self) -> CLinkStateView:
        """Read-only link-column view (differential tests)."""
        return self._links

    @property
    def proc_state(self) -> CProcStateView:
        """Read-only processor-column view (differential tests)."""
        return self._procs


__all__ = ["CKernel", "CLinkStateView", "CProcStateView", "KERNEL_VARIANT", "COMPILED"]
