"""Seeded random-number-generator helpers.

Every stochastic entry point in the library accepts ``rng: int | Generator |
None`` and normalizes it through :func:`as_rng`, so experiments are exactly
reproducible from a single integer seed while interactive use stays
convenient.
"""

from __future__ import annotations

import numpy as np


def as_rng(rng: int | np.random.Generator | None = None) -> np.random.Generator:
    """Normalize a seed-or-generator argument to a :class:`numpy.random.Generator`.

    ``None`` yields a fresh nondeterministic generator; an ``int`` seeds a new
    generator; an existing generator is passed through unchanged (so callers
    can thread one generator through a pipeline).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn_rng(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Used by sweep runners so each repetition has its own stream and results do
    not depend on evaluation order.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]
