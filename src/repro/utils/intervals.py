"""Closed-open time intervals and basic interval algebra.

The link- and processor-schedule engines reason about busy/idle windows; the
helpers here keep that arithmetic in one audited place.  Intervals are
half-open ``[start, finish)`` so abutting busy windows do not "overlap".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True, slots=True)
class Interval:
    """A half-open time interval ``[start, finish)``.

    ``finish`` may be ``math.inf`` for the open tail after the last busy slot.
    A zero-length interval (``start == finish``) is allowed and treated as
    empty.
    """

    start: float
    finish: float

    def __post_init__(self) -> None:
        if self.finish < self.start:
            raise ValueError(f"interval finish {self.finish} precedes start {self.start}")

    @property
    def length(self) -> float:
        return self.finish - self.start

    def is_empty(self) -> bool:
        return self.finish <= self.start

    def contains(self, t: float) -> bool:
        """Whether instant ``t`` lies inside the half-open interval."""
        return self.start <= t < self.finish

    def overlaps(self, other: "Interval") -> bool:
        """Whether the two half-open intervals share a positive-length window."""
        return self.start < other.finish and other.start < self.finish

    def intersection(self, other: "Interval") -> "Interval | None":
        lo = max(self.start, other.start)
        hi = min(self.finish, other.finish)
        if hi <= lo:
            return None
        return Interval(lo, hi)

    def shift(self, dt: float) -> "Interval":
        return Interval(self.start + dt, self.finish + dt)


def merge_intervals(intervals: Iterable[Interval]) -> list[Interval]:
    """Union a set of intervals into a sorted list of disjoint intervals."""
    items = sorted((iv for iv in intervals if not iv.is_empty()), key=lambda iv: iv.start)
    merged: list[Interval] = []
    for iv in items:
        if merged and iv.start <= merged[-1].finish:
            last = merged[-1]
            if iv.finish > last.finish:
                merged[-1] = Interval(last.start, iv.finish)
        else:
            merged.append(iv)
    return merged


def total_length(intervals: Iterable[Interval]) -> float:
    """Total measure of the union of the intervals."""
    return sum(iv.length for iv in merge_intervals(intervals))


def gaps_between(intervals: Iterable[Interval], start: float, finish: float) -> list[Interval]:
    """Idle windows inside ``[start, finish)`` not covered by ``intervals``."""
    if finish < start:
        raise ValueError("window finish precedes start")
    busy = merge_intervals(intervals)
    out: list[Interval] = []
    cursor = start
    for iv in busy:
        if iv.finish <= start:
            continue
        if iv.start >= finish:
            break
        if iv.start > cursor:
            out.append(Interval(cursor, min(iv.start, finish)))
        cursor = max(cursor, iv.finish)
        if cursor >= finish:
            break
    if cursor < finish:
        out.append(Interval(cursor, finish))
    return [iv for iv in out if not iv.is_empty()]
