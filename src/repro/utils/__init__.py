"""Small self-contained helpers shared across the library."""

from repro.utils.rng import as_rng, spawn_rng
from repro.utils.intervals import Interval, merge_intervals, total_length
from repro.utils.tables import format_table, format_series

__all__ = [
    "as_rng",
    "spawn_rng",
    "Interval",
    "merge_intervals",
    "total_length",
    "format_table",
    "format_series",
]
