"""Plain-text table and series rendering for experiment reports.

The benchmark harness prints paper-figure series as aligned text so that the
reproduction can be inspected without a plotting stack (the session and CI
environments are headless).
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_fmt: str = "{:.2f}",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    str_rows = [[render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    sep = "  ".join("-" * w for w in widths)
    out = [line(list(headers)), sep]
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    float_fmt: str = "{:.2f}",
) -> str:
    """Render one or more y-series against shared x-values (figure-style)."""
    headers = [x_label, *series.keys()]
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(ys)} points but x has {len(x_values)}"
            )
    rows = [
        [x, *(series[name][i] for name in series)] for i, x in enumerate(x_values)
    ]
    return format_table(headers, rows, float_fmt=float_fmt)


def format_ascii_plot(
    x_values: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 60,
    height: int = 16,
) -> str:
    """Very small dependency-free scatter/line plot for terminal reports.

    One character per series (`*`, `o`, `+`, ...); collisions keep the first
    series' marker.  Intended for eyeballing curve shape, not precision.
    """
    markers = "*o+x#@%&"
    ys_all = [y for ys in series.values() for y in ys]
    if not ys_all or not x_values:
        return "(empty plot)"
    y_lo, y_hi = min(ys_all), max(ys_all)
    x_lo, x_hi = min(x_values), max(x_values)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for (name, ys), marker in zip(series.items(), markers):
        for x, y in zip(x_values, ys):
            col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
            r, c = height - 1 - row, col
            if grid[r][c] == " ":
                grid[r][c] = marker
    legend = "   ".join(
        f"{marker}={name}" for (name, _), marker in zip(series.items(), markers)
    )
    top = f"{y_hi:10.2f} +" + "-" * width
    bottom = f"{y_lo:10.2f} +" + "-" * width
    body = [" " * 11 + "|" + "".join(row) for row in grid]
    xaxis = " " * 12 + f"{x_lo:<10.2f}" + " " * max(0, width - 20) + f"{x_hi:>10.2f}"
    return "\n".join([legend, top, *body, bottom, xaxis])
